#include "core/shard_solver.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "flow/exchange.h"
#include "geo/geo_point.h"
#include "util/error.h"
#include "util/fork_run.h"
#include "util/stopwatch.h"
#include "verify/shard_audit.h"

namespace ccdn {

namespace {

template <typename T>
void put(std::vector<std::uint8_t>& out, const T& value) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &value, sizeof(T));
}

template <typename T>
T get(std::span<const std::uint8_t> bytes, std::size_t& at) {
  CCDN_REQUIRE(at + sizeof(T) <= bytes.size(),
               "shard result payload truncated");
  T value;
  std::memcpy(&value, bytes.data() + at, sizeof(T));
  at += sizeof(T);
  return value;
}

}  // namespace

std::vector<std::uint8_t> serialize_shard_result(
    const ShardFlowResult& result) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + result.flows.size() * 16);
  put(out, static_cast<std::uint64_t>(result.flows.size()));
  put(out, result.moved);
  put(out, static_cast<std::uint64_t>(result.num_clusters));
  put(out, static_cast<std::uint64_t>(result.guide_nodes));
  put(out, static_cast<std::uint64_t>(result.theta_iterations));
  put(out, result.gc_build_s);
  put(out, result.graph_s);
  put(out, result.mcmf_s);
  for (const FlowEntry& f : result.flows) {
    put(out, f.from);
    put(out, f.to);
    put(out, f.amount);
  }
  return out;
}

ShardFlowResult deserialize_shard_result(std::span<const std::uint8_t> bytes) {
  ShardFlowResult result;
  std::size_t at = 0;
  const auto count = get<std::uint64_t>(bytes, at);
  result.moved = get<std::int64_t>(bytes, at);
  result.num_clusters = static_cast<std::size_t>(get<std::uint64_t>(bytes, at));
  result.guide_nodes = static_cast<std::size_t>(get<std::uint64_t>(bytes, at));
  result.theta_iterations =
      static_cast<std::size_t>(get<std::uint64_t>(bytes, at));
  result.gc_build_s = get<double>(bytes, at);
  result.graph_s = get<double>(bytes, at);
  result.mcmf_s = get<double>(bytes, at);
  result.flows.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    result.flows[i].from = get<std::uint32_t>(bytes, at);
    result.flows[i].to = get<std::uint32_t>(bytes, at);
    result.flows[i].amount = get<std::int64_t>(bytes, at);
  }
  CCDN_REQUIRE(at == bytes.size(), "shard result payload has trailing bytes");
  return result;
}

ShardedSolveOutcome solve_sharded(std::span<const Hotspot> hotspots,
                                  const GridIndex& index,
                                  HotspotPartition& partition,
                                  const ShardAssignment& assignment,
                                  std::span<const std::uint8_t> boundary,
                                  const ShardedSolveOptions& options,
                                  const ShardSolveFn& solve_shard) {
  const std::size_t num_shards = assignment.num_shards;
  CCDN_REQUIRE(assignment.shard_of.size() == hotspots.size(),
               "shard assignment does not cover the hotspot set");
  CCDN_REQUIRE(boundary.size() == hotspots.size(),
               "boundary mask does not cover the hotspot set");
  CCDN_REQUIRE(
      !(options.threaded_caller && options.executor == ShardExecutor::kFork),
      "solve_sharded: kFork from a multithreaded executor (fork would "
      "duplicate held locks); demote to kInProcess first");
  ShardedSolveOutcome outcome;
  outcome.shards.resize(num_shards);
  for (const std::uint8_t b : boundary) outcome.boundary_hotspots += b;

  // --- Per-shard solves. ---
  Stopwatch wall;
  if (options.executor == ShardExecutor::kFork) {
    std::vector<ForkTask> tasks;
    tasks.reserve(num_shards);
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      tasks.push_back(
          [&solve_shard, s] { return serialize_shard_result(solve_shard(s)); });
    }
    const std::vector<ForkResult> forked =
        fork_run_all(std::span<const ForkTask>(tasks));
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      CCDN_ENSURE(forked[s].complete,
                  "shard " + std::to_string(s) +
                      " child failed (exit code " +
                      std::to_string(forked[s].exit_code) + ")");
      outcome.shards[s] = deserialize_shard_result(forked[s].payload);
      outcome.shards[s].peak_rss_mb = forked[s].peak_rss_mb;
    }
  } else {
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      outcome.shards[s] = solve_shard(s);
    }
  }
  outcome.shard_wall_s = wall.elapsed_seconds();

  // --- Commit shard flows against the global slack (the absorb
  // contract: per-shard loads equal the global loads restricted to the
  // shard, so shard-local phi is the global phi on members and this can
  // never underflow on a correct shard solve). ---
  const bool auditing =
      kCheckedBuild && options.audit_level != AuditLevel::kOff;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    const ShardFlowResult& shard = outcome.shards[s];
    if (auditing) {
      AuditReport report;
      audit_shard_flows(shard.flows, assignment.shard_of, s, report);
      report.require_clean("sharded slot: shard flows");
    }
    for (const FlowEntry& f : shard.flows) {
      partition.phi[f.from] -= f.amount;
      partition.phi[f.to] -= f.amount;
      CCDN_ENSURE(partition.phi[f.from] >= 0 && partition.phi[f.to] >= 0,
                  "shard flow exceeded slack");
      outcome.moved += f.amount;
    }
    outcome.flows.insert(outcome.flows.end(), shard.flows.begin(),
                         shard.flows.end());
  }

  // --- Exchange rounds over boundary residuals, θ-swept. A single
  // max-flow at the full radius would move strictly more than the global
  // θ sweep does (progressive commitment strands capacity on purpose —
  // closer arcs first), and every extra unit moved is extra serving
  // distance; sweeping the same θ grid keeps the exchange's movement
  // discipline — and hence the optimality gap — aligned with the global
  // solve's. ---
  wall.reset();
  if (num_shards > 1 && outcome.boundary_hotspots > 0) {
    std::vector<std::uint8_t> is_under(hotspots.size(), 0);
    for (const std::uint32_t j : partition.underutilized) is_under[j] = 1;
    // Same widened-query + exact-cut pattern as candidate_edges, so the
    // exchange sees exactly the arcs a global solve at θ2 would have
    // offered these senders (restricted to surviving slack). Collected
    // once at the full radius; each θ round filters by distance.
    const double query_radius = options.exchange_radius_km * 1.001 + 1e-6;
    std::vector<ExchangeArc> arcs;
    std::vector<std::size_t> near;
    for (const std::uint32_t i : partition.overloaded) {
      if (boundary[i] == 0 || partition.phi[i] <= 0) continue;
      index.within_radius(hotspots[i].location, query_radius, near);
      for (const std::size_t j : near) {
        if (is_under[j] == 0 || partition.phi[j] <= 0) continue;
        const double d =
            distance_km(hotspots[i].location, hotspots[j].location);
        if (d >= options.exchange_radius_km) continue;
        arcs.push_back({i, static_cast<std::uint32_t>(j), d, 0});
      }
    }
    const double theta_step = options.exchange_theta_step_km > 0.0
                                  ? options.exchange_theta_step_km
                                  : options.exchange_radius_km;
    double theta = options.exchange_theta1_km > 0.0
                       ? std::min(options.exchange_theta1_km,
                                  options.exchange_radius_km)
                       : options.exchange_radius_km;
    std::vector<ExchangeArc> live;
    while (true) {
      live.clear();
      for (const ExchangeArc& arc : arcs) {
        if (arc.cost_km >= theta) continue;
        const std::int64_t cap =
            std::min(partition.phi[arc.from], partition.phi[arc.to]);
        if (cap <= 0) continue;
        live.push_back({arc.from, arc.to, arc.cost_km, cap});
      }
      if (!live.empty()) {
        const ExchangeResult exchange = solve_exchange(
            partition.phi, partition.phi, live, options.exchange_strategy);
        for (const ExchangeFlow& f : exchange.flows) {
          outcome.exchange_flows.push_back({f.from, f.to, f.amount});
          partition.phi[f.from] -= f.amount;
          partition.phi[f.to] -= f.amount;
          CCDN_ENSURE(partition.phi[f.from] >= 0 && partition.phi[f.to] >= 0,
                      "exchange flow exceeded residual slack");
          outcome.moved += f.amount;
          outcome.exchange_moved += f.amount;
        }
      }
      if (theta >= options.exchange_radius_km) break;
      theta = std::min(theta + theta_step, options.exchange_radius_km);
    }
    if (!outcome.exchange_flows.empty()) {
      if (auditing) {
        AuditReport report;
        audit_exchange_flows(outcome.exchange_flows, assignment.shard_of,
                             boundary, report);
        report.require_clean("sharded slot: exchange flows");
      }
      outcome.flows.insert(outcome.flows.end(), outcome.exchange_flows.begin(),
                           outcome.exchange_flows.end());
    }
  }
  outcome.exchange_s = wall.elapsed_seconds();
  return outcome;
}

}  // namespace ccdn
