// Zone-sharded flow-solve orchestration (DESIGN.md §3.12).
//
// Given a slot's global HotspotPartition and a geo shard assignment
// (geo/zone_partition.h), solve_sharded():
//
//   1. runs a caller-supplied per-shard solve — flat RBCAer's θ sweep or
//      the virtual scheme's regional loop, restricted to one shard's
//      hotspots — for every shard, either in forked child processes
//      (util/fork_run.h, the production model: per-shard address spaces are
//      the path to per-machine shards) or in-process (for callers already
//      running inside a thread pool, and as the fork path's differential
//      oracle — both executors produce bit-identical results because the
//      per-shard solve is a pure function of the slot inputs);
//   2. commits every shard-local flow against the caller's global
//      partition slack, exactly like the unsharded absorb loop;
//   3. runs a θ-swept exchange over the residuals: boundary senders (the
//      hotspots whose candidate radius crosses a shard cut, so their local
//      solve was blind to receivers across it) offer their remaining
//      overload to the residual slack of every hotspot within the exchange
//      radius — in any shard, the sender's own included. The reduced
//      network (flow/exchange.h) is re-solved at increasing distance
//      radii (θ1, θ1+δ, … up to the exchange radius), mirroring the global
//      sweep's closest-first commitment discipline; a single max-flow at
//      the full radius would move strictly more traffic than the global
//      solve and inflate the optimality gap.
//
// The caller's partition.phi ends up accounting for every committed unit,
// so the merged flow list satisfies the same audit_flow_entries contract as
// an unsharded slot. Per-shard locality and exchange boundary-sender
// structure are audited via verify/shard_audit.h (checked builds, audit
// level >= kPlan).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/balance_graph.h"
#include "flow/mcmf.h"
#include "geo/zone_partition.h"
#include "model/types.h"
#include "verify/audit.h"

namespace ccdn {

/// How the per-shard solves execute.
enum class ShardExecutor : std::uint8_t {
  /// One forked child process per shard, results serialized back over a
  /// pipe (util/fork_run.h). The production model.
  kFork,
  /// Run the shard solves sequentially in the calling process. For callers
  /// inside a thread pool (the parallel simulator's clone lanes) and as the
  /// fork executor's differential oracle.
  kInProcess,
};

/// What one shard's local solve returns. Flows are in GLOBAL hotspot ids;
/// the timing fields are child-measured (so under kFork they exclude fork
/// and serialization overhead — that lives in ShardedSolveOutcome's wall
/// clock).
struct ShardFlowResult {
  std::vector<FlowEntry> flows;
  std::int64_t moved = 0;
  std::size_t num_clusters = 0;
  std::size_t guide_nodes = 0;
  std::size_t theta_iterations = 0;
  double gc_build_s = 0.0;  // content clustering
  double graph_s = 0.0;     // candidate + Gd/Gc construction
  double mcmf_s = 0.0;      // augmentation
  /// Child peak RSS, filled by the orchestrator under kFork (0 in-process).
  double peak_rss_mb = 0.0;
};

/// Exact byte round-trip for the pipe channel (exposed for tests; doubles
/// travel as raw bit patterns, so determinism survives the hop).
[[nodiscard]] std::vector<std::uint8_t> serialize_shard_result(
    const ShardFlowResult& result);
[[nodiscard]] ShardFlowResult deserialize_shard_result(
    std::span<const std::uint8_t> bytes);

struct ShardedSolveOptions {
  ShardExecutor executor = ShardExecutor::kFork;
  /// Arc radius of the exchange round; the schemes pass θ2 so the exchange
  /// sees exactly the receiver neighbourhood the global solve would have
  /// offered these senders.
  double exchange_radius_km = 1.5;
  /// θ grid of the exchange rounds (the schemes pass θ1/δ): the exchange
  /// sweeps radii θ1, θ1+δ, … up to exchange_radius_km, committing after
  /// each round, mirroring the global sweep's closer-arcs-first movement
  /// discipline. Non-positive values collapse to a single round at the
  /// full radius.
  double exchange_theta1_km = 0.0;
  double exchange_theta_step_km = 0.0;
  McmfStrategy exchange_strategy = McmfStrategy::kSpfa;
  AuditLevel audit_level = AuditLevel::kOff;
  /// Set by callers whose plan runs inside a multithreaded executor
  /// (SchemeContext::threaded_executor). solve_sharded REQUIREs that kFork
  /// is never combined with it: forking a multithreaded process can hand
  /// the child a sibling thread's held allocator/logger lock with no
  /// thread left to release it. Schemes demote to kInProcess (bit-identical
  /// by contract) before calling; the REQUIRE catches any new caller that
  /// skips the demotion.
  bool threaded_caller = false;
};

struct ShardedSolveOutcome {
  /// Shard flows (in shard order) followed by exchange flows; not yet
  /// merged per pair — callers run merge_flow_entries like the unsharded
  /// path.
  std::vector<FlowEntry> flows;
  /// Per-shard results with their flows intact (diagnostics and benches).
  std::vector<ShardFlowResult> shards;
  std::vector<FlowEntry> exchange_flows;
  std::int64_t moved = 0;           // total committed, exchange included
  std::int64_t exchange_moved = 0;  // exchange round's share
  std::size_t boundary_hotspots = 0;
  /// Wall time of the executor phase (fork → every shard result collected).
  double shard_wall_s = 0.0;
  /// Wall time of the exchange round (arc build + reduced solve + commit).
  double exchange_s = 0.0;
};

/// The per-shard solve: given a shard id, produce that shard's local flow
/// result. Must be a pure function of the slot inputs (it runs in a forked
/// child under kFork, so side effects would be lost anyway — the pipe
/// result is the only channel back).
using ShardSolveFn = std::function<ShardFlowResult(std::uint32_t shard)>;

/// Run the sharded solve + exchange round described above. `partition` is
/// the slot's global partition; its phi values are decremented in place for
/// every committed flow. `boundary` is the mask from boundary_hotspots()
/// at the exchange radius.
[[nodiscard]] ShardedSolveOutcome solve_sharded(
    std::span<const Hotspot> hotspots, const GridIndex& index,
    HotspotPartition& partition, const ShardAssignment& assignment,
    std::span<const std::uint8_t> boundary,
    const ShardedSolveOptions& options, const ShardSolveFn& solve_shard);

}  // namespace ccdn
