#include "core/rbcaer_scheme.h"

#include <algorithm>
#include <cmath>

#include "cluster/content_distance.h"
#include "core/replication.h"
#include "geo/geo_point.h"
#include "model/topsets.h"
#include "util/error.h"
#include "util/stopwatch.h"
#include "verify/flow_audit.h"
#include "verify/schedule_audit.h"

namespace ccdn {

RbcaerScheme::RbcaerScheme(RbcaerConfig config)
    : config_(config),
      sweeper_(config.mcmf_strategy, config.integer_costs,
               config.cost_scale) {
  CCDN_REQUIRE(config_.theta1_km >= 0.0, "negative theta1");
  CCDN_REQUIRE(config_.theta2_km >= config_.theta1_km,
               "theta2 below theta1");
  CCDN_REQUIRE(config_.delta_km > 0.0, "non-positive delta");
  CCDN_REQUIRE(config_.top_fraction > 0.0 && config_.top_fraction <= 1.0,
               "top_fraction outside (0,1]");
  CCDN_REQUIRE(config_.bpeak_multiplier > 0.0, "non-positive B_peak");
  CCDN_REQUIRE(!config_.online || config_.incremental_sweep,
               "online mode requires the incremental sweep");
  CCDN_REQUIRE(!config_.integer_costs || config_.incremental_sweep,
               "integer costs require the incremental sweep (the cold "
               "oracle path is double-only)");
  CCDN_REQUIRE(config_.cost_scale > 0.0, "non-positive cost scale");
  sweeper_.set_audit_level(config_.audit_level);
}

std::string RbcaerScheme::name() const {
  return config_.content_aggregation ? "RBCAer" : "RBCAer(no-aggregation)";
}

ThreadPool* RbcaerScheme::jd_pool() {
  if (config_.jd_threads == 1) return nullptr;
  if (!jd_pool_) {
    jd_pool_ = std::make_unique<ThreadPool>(config_.jd_threads == 0
                                                ? ThreadPool::default_threads()
                                                : config_.jd_threads);
  }
  return jd_pool_.get();
}

SlotPlan RbcaerScheme::plan_slot(const SchemeContext& context,
                                 std::span<const Request> requests,
                                 const SlotDemand& demand) {
  CCDN_REQUIRE(demand.num_hotspots() == context.hotspots.size(),
               "demand/hotspot count mismatch");
  const std::size_t m = context.hotspots.size();
  diagnostics_ = {};
  stage_timings_ = {};
  Stopwatch stage_clock;

  // --- Partition and movable slack. ---
  std::vector<std::uint32_t> loads(m);
  for (std::size_t h = 0; h < m; ++h) {
    loads[h] = demand.load(static_cast<HotspotIndex>(h));
  }
  HotspotPartition partition =
      HotspotPartition::from_loads(context.hotspots, loads);
  diagnostics_.max_movable = partition.max_movable();

  // Auditing needs the slack as of the partition build: the sweep
  // decrements phi in place, and the f_ij bound is against the initial
  // values (kCheckedBuild only; audit_phi stays empty in release builds).
  const bool auditing =
      kCheckedBuild && config_.audit_level != AuditLevel::kOff;
  std::vector<std::int64_t> audit_phi;
  if (auditing) audit_phi = partition.phi;

  stage_timings_.partition_s = stage_clock.elapsed_seconds();

  // --- Content clustering (only needed when aggregation is on and there
  // is anything to move). ---
  std::vector<std::uint32_t> cluster_of(m, 0);
  const bool has_work = diagnostics_.max_movable > 0;
  if (config_.content_aggregation && has_work) {
    stage_clock.reset();
    const auto top_sets = top_sets_per_hotspot(demand, config_.top_fraction);
    const DistanceMatrix jd = content_distance_matrix(
        top_sets, {.use_bitmap = config_.bitmap_jaccard, .pool = jd_pool()});
    const ClusteringResult clustering = hierarchical_cluster(
        jd, config_.linkage, config_.content_cluster_threshold);
    cluster_of = clustering.labels;
    diagnostics_.num_clusters = clustering.num_clusters;
    stage_timings_.gc_build_s = stage_clock.elapsed_seconds();
  }

  // --- Algorithm 1: θ sweep over Gc, then residual pass over Gd. ---
  std::vector<FlowEntry> flows;  // per-θ increments; merged by pair below
  const auto absorb = [&](const std::vector<FlowEntry>& extracted) {
    for (const auto& f : extracted) {
      partition.phi[f.from] -= f.amount;
      partition.phi[f.to] -= f.amount;
      CCDN_ENSURE(partition.phi[f.from] >= 0 && partition.phi[f.to] >= 0,
                  "flow exceeded slack");
      diagnostics_.moved += f.amount;
    }
    flows.insert(flows.end(), extracted.begin(), extracted.end());
  };
  // Incremental steps already committed their flows (φ decremented, slack
  // invariant checked inside the sweeper); just accumulate.
  const auto absorb_step = [&](const SweepStep& step) {
    diagnostics_.moved += step.moved;
    diagnostics_.guide_nodes += step.guide_nodes;
    stage_timings_.graph_s += step.graph_s;
    stage_timings_.mcmf_s += step.mcmf_s;
    flows.insert(flows.end(), step.flows.begin(), step.flows.end());
  };

  if (has_work) {
    constexpr double kThetaEps = 1e-9;
    // Radius query per overloaded hotspot via the shared spatial index,
    // instead of scanning every (overloaded, under-utilized) pair. The
    // cold path needs the candidates up front; the incremental path only
    // when the online scaffold patch does not apply, so it generates them
    // inside its own branch.
    const auto generate_candidates = [&] {
      return candidate_edges(context.hotspots, partition, config_.theta2_km,
                             context.hotspot_index);
    };
    if (config_.incremental_sweep) {
      const std::size_t reprices_before = sweeper_.potential_reprices();
      const std::size_t patches_before = sweeper_.online_patches();
      stage_clock.reset();
      // Online slots first try the cross-slot patch; when membership
      // changed (or on the first slot) fall back to a full begin_slot,
      // with candidate generation served from the cross-slot cache.
      if (!config_.online || !sweeper_.begin_slot_online(partition)) {
        if (config_.online) {
          candidate_cache_.collect(context.hotspots, partition,
                                   config_.theta2_km, context.hotspot_index,
                                   candidate_buf_);
        } else {
          candidate_buf_ = generate_candidates();
        }
        sweeper_.begin_slot(partition,
                            std::span<const CandidateEdge>(candidate_buf_));
      }
      stage_timings_.graph_s += stage_clock.elapsed_seconds();
      double theta = config_.theta1_km;
      while (theta <= config_.theta2_km + kThetaEps &&
             diagnostics_.moved < diagnostics_.max_movable) {
        ++diagnostics_.theta_iterations;
        absorb_step(config_.content_aggregation
                        ? sweeper_.step_gc(theta, cluster_of, config_.guide)
                        : sweeper_.step_gd(theta));
        theta += config_.delta_km;
      }
      if (diagnostics_.moved < diagnostics_.max_movable) {
        // Residual pass on the plain distance graph at θ2 (Algorithm 1,
        // line 12); anything beyond that stays with its home hotspot and
        // overflows to the CDN at admission (line 14).
        absorb_step(sweeper_.step_gd(config_.theta2_km));
      }
      sweeper_.end_slot();
      diagnostics_.potential_reprices =
          sweeper_.potential_reprices() - reprices_before;
      diagnostics_.online_patches =
          sweeper_.online_patches() - patches_before;
    } else {
      stage_clock.reset();
      const std::vector<CandidateEdge> candidates = generate_candidates();
      stage_timings_.graph_s += stage_clock.elapsed_seconds();
      double theta = config_.theta1_km;
      while (theta <= config_.theta2_km + kThetaEps &&
             diagnostics_.moved < diagnostics_.max_movable) {
        stage_clock.reset();
        BalanceGraph graph =
            config_.content_aggregation
                ? build_gc(partition, candidates, theta, cluster_of,
                           config_.guide)
                : build_gd(partition, candidates, theta);
        stage_timings_.graph_s += stage_clock.elapsed_seconds();
        diagnostics_.guide_nodes += graph.num_guide_nodes;
        ++diagnostics_.theta_iterations;
        stage_clock.reset();
        (void)MinCostMaxFlow::solve(graph.net, graph.source, graph.sink,
                                    config_.mcmf_strategy);
        stage_timings_.mcmf_s += stage_clock.elapsed_seconds();
        absorb(extract_flows(graph));
        theta += config_.delta_km;
      }
      if (diagnostics_.moved < diagnostics_.max_movable) {
        // Residual pass (Algorithm 1 line 12), as above.
        stage_clock.reset();
        BalanceGraph graph =
            build_gd(partition, candidates, config_.theta2_km);
        stage_timings_.graph_s += stage_clock.elapsed_seconds();
        stage_clock.reset();
        (void)MinCostMaxFlow::solve(graph.net, graph.source, graph.sink,
                                    config_.mcmf_strategy);
        stage_timings_.mcmf_s += stage_clock.elapsed_seconds();
        absorb(extract_flows(graph));
      }
    }
  }

  merge_flow_entries(flows);
  if (auditing) {
    AuditReport report;
    audit_flow_entries(flows, partition, audit_phi, report);
    report.require_clean("rbcaer slot flows");
  }

  // --- Procedure 1: redirections + placements under B_peak. ---
  stage_clock.reset();
  const auto budget = static_cast<std::size_t>(std::llround(
      config_.bpeak_multiplier * static_cast<double>(demand.num_requests())));
  ReplicationResult replication = content_aggregation_replication(
      demand, context.hotspots, flows, budget, config_.audit_level);
  diagnostics_.redirected = replication.total_redirected;
  diagnostics_.replicas = replication.replicas;

  // --- Materialize the per-request assignment. ---
  SlotPlan plan;
  plan.placements = std::move(replication.placements);
  plan.assignment = materialize_assignment(requests, demand.request_home(),
                                           std::move(replication.redirects));

  if (config_.miss_redirection) {
    redirect_local_misses(context, requests, plan);
  }
  if (auditing) {
    AuditReport report;
    audit_slot_plan(plan, context.hotspots, requests, demand.request_home(),
                    report);
    report.require_clean("rbcaer slot plan");
  }
  stage_timings_.replication_s = stage_clock.elapsed_seconds();
  return plan;
}

void RbcaerScheme::redirect_local_misses(const SchemeContext& context,
                                         std::span<const Request> requests,
                                         SlotPlan& plan) const {
  const std::size_t m = context.hotspots.size();
  const auto cached = [&](std::size_t h, VideoId v) {
    return std::binary_search(plan.placements[h].begin(),
                              plan.placements[h].end(), v);
  };
  // Capacity already spoken for by servable assignments.
  std::vector<std::int64_t> capacity_left(m);
  for (std::size_t h = 0; h < m; ++h) {
    capacity_left[h] =
        static_cast<std::int64_t>(context.hotspots[h].service_capacity);
  }
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const HotspotIndex target = plan.assignment[r];
    if (target != kCdnServer && cached(target, requests[r].video)) {
      --capacity_left[target];  // may go negative at overloaded homes
    }
  }
  // Neighbour lists are shared per home hotspot (as in RandomScheme).
  std::vector<std::vector<std::size_t>> neighbours(m);
  std::size_t rerouted = 0;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const HotspotIndex home = plan.assignment[r];
    if (home == kCdnServer || home >= m) continue;
    if (cached(home, requests[r].video)) continue;  // served locally
    auto& pool = neighbours[home];
    if (pool.empty()) {
      pool = context.hotspot_index.within_radius(
          context.hotspots[home].location, config_.theta2_km);
    }
    // Nearest candidate with the video and spare capacity. The pool is
    // small (θ2-radius), so a linear scan with distance tracking is fine.
    std::size_t best = m;
    double best_distance = 0.0;
    for (const std::size_t candidate : pool) {
      if (candidate == home || capacity_left[candidate] <= 0) continue;
      if (!cached(candidate, requests[r].video)) continue;
      const double d = distance_km(requests[r].location,
                                   context.hotspots[candidate].location);
      if (best == m || d < best_distance) {
        best = candidate;
        best_distance = d;
      }
    }
    if (best == m) continue;  // genuinely nowhere to go but the CDN
    plan.assignment[r] = static_cast<HotspotIndex>(best);
    --capacity_left[best];
    ++rerouted;
  }
  diagnostics_.miss_rerouted = rerouted;
}

}  // namespace ccdn
