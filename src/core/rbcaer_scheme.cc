#include "core/rbcaer_scheme.h"

#include <algorithm>
#include <cmath>

#include "cluster/content_distance.h"
#include "core/replication.h"
#include "geo/geo_point.h"
#include "geo/grid_index.h"
#include "model/topsets.h"
#include "util/error.h"
#include "util/stopwatch.h"
#include "verify/flow_audit.h"
#include "verify/schedule_audit.h"

namespace ccdn {

namespace {

/// Flow-phase result of one θ sweep (Algorithm 1 lines 5–12).
struct SweepOutcome {
  std::vector<FlowEntry> flows;  // per-θ increments, unmerged
  std::int64_t moved = 0;
  std::size_t guide_nodes = 0;
  std::size_t theta_iterations = 0;
  double graph_s = 0.0;
  double mcmf_s = 0.0;
  std::size_t potential_reprices = 0;
  std::size_t online_patches = 0;
};

/// Algorithm 1's flow phase: θ sweep over Gc (or Gd when aggregation is
/// off), then the residual Gd pass at θ2. Shared verbatim by the unsharded
/// slot and by every shard's local solve — sharing the code is what keeps
/// shard=1 plans bit-identical to the unsharded path. `cache` non-null
/// selects online candidate generation (the caller already validated
/// online mode); the cold rebuild-per-θ path ignores `sweeper`.
SweepOutcome run_theta_sweep(const RbcaerConfig& config,
                             std::span<const Hotspot> hotspots,
                             const GridIndex& index,
                             HotspotPartition& partition,
                             std::int64_t max_movable,
                             std::span<const std::uint32_t> cluster_of,
                             ThetaSweeper& sweeper, CandidateCache* cache,
                             std::vector<CandidateEdge>& candidate_buf) {
  SweepOutcome out;
  Stopwatch stage_clock;
  const auto absorb = [&](const std::vector<FlowEntry>& extracted) {
    for (const auto& f : extracted) {
      partition.phi[f.from] -= f.amount;
      partition.phi[f.to] -= f.amount;
      CCDN_ENSURE(partition.phi[f.from] >= 0 && partition.phi[f.to] >= 0,
                  "flow exceeded slack");
      out.moved += f.amount;
    }
    out.flows.insert(out.flows.end(), extracted.begin(), extracted.end());
  };
  // Incremental steps already committed their flows (φ decremented, slack
  // invariant checked inside the sweeper); just accumulate.
  const auto absorb_step = [&](const SweepStep& step) {
    out.moved += step.moved;
    out.guide_nodes += step.guide_nodes;
    out.graph_s += step.graph_s;
    out.mcmf_s += step.mcmf_s;
    out.flows.insert(out.flows.end(), step.flows.begin(), step.flows.end());
  };

  constexpr double kThetaEps = 1e-9;
  // Radius query per overloaded hotspot via the shared spatial index,
  // instead of scanning every (overloaded, under-utilized) pair. The
  // cold path needs the candidates up front; the incremental path only
  // when the online scaffold patch does not apply, so it generates them
  // inside its own branch.
  const auto generate_candidates = [&] {
    return candidate_edges(hotspots, partition, config.theta2_km, index);
  };
  if (config.incremental_sweep) {
    const std::size_t reprices_before = sweeper.potential_reprices();
    const std::size_t patches_before = sweeper.online_patches();
    stage_clock.reset();
    // Online slots first try the cross-slot patch; when membership
    // changed (or on the first slot) fall back to a full begin_slot,
    // with candidate generation served from the cross-slot cache.
    if (!cache || !sweeper.begin_slot_online(partition)) {
      if (cache) {
        cache->collect(hotspots, partition, config.theta2_km, index,
                       candidate_buf);
      } else {
        candidate_buf = generate_candidates();
      }
      sweeper.begin_slot(partition,
                         std::span<const CandidateEdge>(candidate_buf));
    }
    out.graph_s += stage_clock.elapsed_seconds();
    double theta = config.theta1_km;
    while (theta <= config.theta2_km + kThetaEps && out.moved < max_movable) {
      ++out.theta_iterations;
      absorb_step(config.content_aggregation
                      ? sweeper.step_gc(theta, cluster_of, config.guide)
                      : sweeper.step_gd(theta));
      theta += config.delta_km;
    }
    if (out.moved < max_movable) {
      // Residual pass on the plain distance graph at θ2 (Algorithm 1,
      // line 12); anything beyond that stays with its home hotspot and
      // overflows to the CDN at admission (line 14).
      absorb_step(sweeper.step_gd(config.theta2_km));
    }
    sweeper.end_slot();
    out.potential_reprices = sweeper.potential_reprices() - reprices_before;
    out.online_patches = sweeper.online_patches() - patches_before;
  } else {
    stage_clock.reset();
    const std::vector<CandidateEdge> candidates = generate_candidates();
    out.graph_s += stage_clock.elapsed_seconds();
    double theta = config.theta1_km;
    while (theta <= config.theta2_km + kThetaEps && out.moved < max_movable) {
      stage_clock.reset();
      BalanceGraph graph =
          config.content_aggregation
              ? build_gc(partition, candidates, theta, cluster_of,
                         config.guide)
              : build_gd(partition, candidates, theta);
      out.graph_s += stage_clock.elapsed_seconds();
      out.guide_nodes += graph.num_guide_nodes;
      ++out.theta_iterations;
      stage_clock.reset();
      (void)MinCostMaxFlow::solve(graph.net, graph.source, graph.sink,
                                  config.mcmf_strategy);
      out.mcmf_s += stage_clock.elapsed_seconds();
      absorb(extract_flows(graph));
      theta += config.delta_km;
    }
    if (out.moved < max_movable) {
      // Residual pass (Algorithm 1 line 12), as above.
      stage_clock.reset();
      BalanceGraph graph = build_gd(partition, candidates, config.theta2_km);
      out.graph_s += stage_clock.elapsed_seconds();
      stage_clock.reset();
      (void)MinCostMaxFlow::solve(graph.net, graph.source, graph.sink,
                                  config.mcmf_strategy);
      out.mcmf_s += stage_clock.elapsed_seconds();
      absorb(extract_flows(graph));
    }
  }
  return out;
}

/// One shard's local solve: rebuild the full RBCAer clustering + flow phase
/// on the sub-instance induced by the shard's member hotspots, then remap
/// the flows back to global ids. A pure function of (config, hotspots,
/// demand, members), so it runs identically in a forked child or in-process
/// (ShardExecutor's bit-identity contract).
ShardFlowResult solve_shard_instance(const RbcaerConfig& config,
                                     std::span<const Hotspot> hotspots,
                                     const SlotDemand& demand,
                                     std::span<const std::uint32_t> members) {
  ShardFlowResult out;
  const std::size_t n = members.size();
  std::vector<Hotspot> sub_hotspots;
  sub_hotspots.reserve(n);
  std::vector<std::vector<VideoDemand>> sub_videos;
  sub_videos.reserve(n);
  for (const std::uint32_t h : members) {
    sub_hotspots.push_back(hotspots[h]);
    const auto videos = demand.video_demand(static_cast<HotspotIndex>(h));
    sub_videos.emplace_back(videos.begin(), videos.end());
  }
  const SlotDemand local(std::move(sub_videos));
  std::vector<std::uint32_t> loads(n);
  for (std::size_t i = 0; i < n; ++i) {
    loads[i] = local.load(static_cast<HotspotIndex>(i));
  }
  HotspotPartition partition =
      HotspotPartition::from_loads(sub_hotspots, loads);
  const std::int64_t max_movable = partition.max_movable();
  if (max_movable == 0) return out;

  // Stage clocks below are wall time, which inflates when more forked
  // children than cores run at once (the kernel time-slices them). Track
  // the child's thread-CPU time alongside and rescale the reported stages
  // by cpu/wall at the end: on an idle multicore box the ratio is ~1, and
  // under contention the rescaled figures are the per-shard cost a
  // dedicated core would pay — the quantity the critical-path model (max
  // over shards) is meant to aggregate.
  const Stopwatch solve_wall;
  const ThreadCpuStopwatch solve_cpu;
  Stopwatch stage_clock;
  std::vector<std::uint32_t> cluster_of(n, 0);
  if (config.content_aggregation) {
    // Serial Jd build: the shards themselves are the parallelism, and a
    // forked child must not touch the parent's thread pool anyway.
    const auto top_sets = top_sets_per_hotspot(local, config.top_fraction);
    const DistanceMatrix jd = content_distance_matrix(
        top_sets, {.use_bitmap = config.bitmap_jaccard, .simd = config.simd});
    const ClusteringResult clustering = hierarchical_cluster(
        jd, config.linkage, config.content_cluster_threshold, config.simd);
    cluster_of = clustering.labels;
    out.num_clusters = clustering.num_clusters;
    out.gc_build_s = stage_clock.elapsed_seconds();
  }

  std::vector<GeoPoint> locations;
  locations.reserve(n);
  for (const Hotspot& h : sub_hotspots) locations.push_back(h.location);
  // Cell size only affects query speed, not candidate content or order
  // (candidate_edges applies the exact distance cut and sorts receivers by
  // index), so any grid works; mirror the simulator's cell.
  const GridIndex index(std::move(locations), 0.5);
  ThetaSweeper sweeper(config.mcmf_strategy, config.integer_costs,
                       config.cost_scale);
  sweeper.set_audit_level(config.audit_level);
  std::vector<CandidateEdge> candidate_buf;
  SweepOutcome sweep =
      run_theta_sweep(config, sub_hotspots, index, partition, max_movable,
                      cluster_of, sweeper, nullptr, candidate_buf);
  out.moved = sweep.moved;
  out.guide_nodes = sweep.guide_nodes;
  out.theta_iterations = sweep.theta_iterations;
  out.graph_s = sweep.graph_s;
  out.mcmf_s = sweep.mcmf_s;
  out.flows = std::move(sweep.flows);
  for (FlowEntry& f : out.flows) {
    f.from = members[f.from];
    f.to = members[f.to];
  }
  const double wall = solve_wall.elapsed_seconds();
  if (wall > 0.0) {
    const double scale =
        std::min(1.0, solve_cpu.elapsed_seconds() / wall);
    out.gc_build_s *= scale;
    out.graph_s *= scale;
    out.mcmf_s *= scale;
  }
  return out;
}

}  // namespace

RbcaerScheme::RbcaerScheme(RbcaerConfig config)
    : config_(config),
      sweeper_(config.mcmf_strategy, config.integer_costs,
               config.cost_scale) {
  CCDN_REQUIRE(config_.theta1_km >= 0.0, "negative theta1");
  CCDN_REQUIRE(config_.theta2_km >= config_.theta1_km,
               "theta2 below theta1");
  CCDN_REQUIRE(config_.delta_km > 0.0, "non-positive delta");
  CCDN_REQUIRE(config_.top_fraction > 0.0 && config_.top_fraction <= 1.0,
               "top_fraction outside (0,1]");
  CCDN_REQUIRE(config_.bpeak_multiplier > 0.0, "non-positive B_peak");
  CCDN_REQUIRE(!config_.online || config_.incremental_sweep,
               "online mode requires the incremental sweep");
  CCDN_REQUIRE(!config_.integer_costs || config_.incremental_sweep,
               "integer costs require the incremental sweep (the cold "
               "oracle path is double-only)");
  CCDN_REQUIRE(config_.cost_scale > 0.0, "non-positive cost scale");
  sweeper_.set_audit_level(config_.audit_level);
}

std::string RbcaerScheme::name() const {
  return config_.content_aggregation ? "RBCAer" : "RBCAer(no-aggregation)";
}

ThreadPool* RbcaerScheme::jd_pool() {
  if (config_.jd_threads == 1) return nullptr;
  if (!jd_pool_) {
    jd_pool_ = std::make_unique<ThreadPool>(config_.jd_threads == 0
                                                ? ThreadPool::default_threads()
                                                : config_.jd_threads);
  }
  return jd_pool_.get();
}

SlotPlan RbcaerScheme::plan_slot(const SchemeContext& context,
                                 std::span<const Request> requests,
                                 const SlotDemand& demand) {
  CCDN_REQUIRE(demand.num_hotspots() == context.hotspots.size(),
               "demand/hotspot count mismatch");
  const std::size_t m = context.hotspots.size();
  diagnostics_ = {};
  stage_timings_ = {};
  Stopwatch stage_clock;

  // --- Partition and movable slack. ---
  std::vector<std::uint32_t> loads(m);
  for (std::size_t h = 0; h < m; ++h) {
    loads[h] = demand.load(static_cast<HotspotIndex>(h));
  }
  HotspotPartition partition =
      HotspotPartition::from_loads(context.hotspots, loads);
  diagnostics_.max_movable = partition.max_movable();

  // Auditing needs the slack as of the partition build: the sweep
  // decrements phi in place, and the f_ij bound is against the initial
  // values (kCheckedBuild only; audit_phi stays empty in release builds).
  const bool auditing =
      kCheckedBuild && config_.audit_level != AuditLevel::kOff;
  std::vector<std::int64_t> audit_phi;
  if (auditing) audit_phi = partition.phi;

  stage_timings_.partition_s = stage_clock.elapsed_seconds();

  // Sharded planning (DESIGN.md §3.12): explicit config wins, else inherit
  // the simulation-wide shard count from the context. 0 = classic
  // unsharded path.
  const std::size_t num_shards = std::min(
      config_.num_shards != 0 ? config_.num_shards : context.num_shards, m);
  const bool sharded = num_shards >= 1;
  CCDN_REQUIRE(!sharded || !config_.online,
               "sharded planning is incompatible with online mode (the "
               "cross-slot scaffold lives in one process)");

  // --- Content clustering (only needed when aggregation is on and there
  // is anything to move; sharded slots cluster per shard instead). ---
  std::vector<std::uint32_t> cluster_of(m, 0);
  const bool has_work = diagnostics_.max_movable > 0;
  if (!sharded && config_.content_aggregation && has_work) {
    stage_clock.reset();
    const auto top_sets = top_sets_per_hotspot(demand, config_.top_fraction);
    const DistanceMatrix jd = content_distance_matrix(
        top_sets, {.use_bitmap = config_.bitmap_jaccard, .pool = jd_pool(),
                   .simd = config_.simd});
    const ClusteringResult clustering = hierarchical_cluster(
        jd, config_.linkage, config_.content_cluster_threshold, config_.simd);
    cluster_of = clustering.labels;
    diagnostics_.num_clusters = clustering.num_clusters;
    stage_timings_.gc_build_s = stage_clock.elapsed_seconds();
  }

  // --- Algorithm 1: θ sweep over Gc, then residual pass over Gd. ---
  std::vector<FlowEntry> flows;  // per-θ increments; merged by pair below
  if (has_work) {
    if (sharded) {
      flows = plan_shard_flows(context, demand, partition, num_shards);
    } else {
      SweepOutcome sweep = run_theta_sweep(
          config_, context.hotspots, context.hotspot_index, partition,
          diagnostics_.max_movable, cluster_of, sweeper_,
          config_.online ? &candidate_cache_ : nullptr, candidate_buf_);
      diagnostics_.moved = sweep.moved;
      diagnostics_.guide_nodes = sweep.guide_nodes;
      diagnostics_.theta_iterations = sweep.theta_iterations;
      diagnostics_.potential_reprices = sweep.potential_reprices;
      diagnostics_.online_patches = sweep.online_patches;
      stage_timings_.graph_s += sweep.graph_s;
      stage_timings_.mcmf_s += sweep.mcmf_s;
      flows = std::move(sweep.flows);
    }
  }

  merge_flow_entries(flows);
  if (auditing) {
    AuditReport report;
    audit_flow_entries(flows, partition, audit_phi, report);
    report.require_clean("rbcaer slot flows");
  }

  // --- Procedure 1: redirections + placements under B_peak. ---
  stage_clock.reset();
  const auto budget = static_cast<std::size_t>(std::llround(
      config_.bpeak_multiplier * static_cast<double>(demand.num_requests())));
  ReplicationResult replication = content_aggregation_replication(
      demand, context.hotspots, flows, budget, config_.audit_level);
  diagnostics_.redirected = replication.total_redirected;
  diagnostics_.replicas = replication.replicas;

  // --- Materialize the per-request assignment. ---
  SlotPlan plan;
  plan.placements = std::move(replication.placements);
  plan.assignment = materialize_assignment(requests, demand.request_home(),
                                           std::move(replication.redirects));

  if (config_.miss_redirection) {
    redirect_local_misses(context, requests, plan);
  }
  if (auditing) {
    AuditReport report;
    audit_slot_plan(plan, context.hotspots, requests, demand.request_home(),
                    report);
    report.require_clean("rbcaer slot plan");
  }
  stage_timings_.replication_s = stage_clock.elapsed_seconds();
  return plan;
}

std::vector<FlowEntry> RbcaerScheme::plan_shard_flows(
    const SchemeContext& context, const SlotDemand& demand,
    HotspotPartition& partition, std::size_t num_shards) {
  const std::size_t m = context.hotspots.size();
  // Hotspot geometry is fixed across a run's slots, so the zone plan is
  // computed once per (shard count, hotspot set) and reused.
  if (shard_plan_.num_shards != num_shards ||
      shard_plan_.assignment.shard_of.size() != m ||
      distance_km(shard_plan_.first, context.hotspots.front().location) !=
          0.0 ||
      distance_km(shard_plan_.last, context.hotspots.back().location) != 0.0) {
    std::vector<GeoPoint> locations;
    locations.reserve(m);
    for (const Hotspot& h : context.hotspots) locations.push_back(h.location);
    shard_plan_.assignment = partition_zones(locations, num_shards);
    shard_plan_.boundary =
        boundary_hotspots(locations, shard_plan_.assignment,
                          config_.theta2_km, context.hotspot_index);
    shard_plan_.num_shards = num_shards;
    shard_plan_.first = context.hotspots.front().location;
    shard_plan_.last = context.hotspots.back().location;
  }

  // The child solve must not touch this object's pool, cache, or sweeper:
  // a neutralized config makes solve_shard_instance a pure function of
  // (config, hotspots, demand, members) — safe in a forked child and
  // bit-identical in-process.
  RbcaerConfig child_config = config_;
  child_config.online = false;
  child_config.num_shards = 0;
  child_config.jd_threads = 1;

  ShardedSolveOptions options;
  options.executor = config_.shard_executor;
  if (context.threaded_executor && options.executor == ShardExecutor::kFork) {
    // fork() under the clone-ring lanes would duplicate a multithreaded
    // process: the child can inherit a sibling worker's held allocator or
    // logger lock with no thread left to release it. The executors are
    // bit-identical by contract, so only the mechanism changes.
    options.executor = ShardExecutor::kInProcess;
    diagnostics_.fork_demotions += 1;
  }
  options.threaded_caller = context.threaded_executor;
  options.exchange_radius_km = config_.theta2_km;
  options.exchange_theta1_km = config_.theta1_km;
  options.exchange_theta_step_km = config_.delta_km;
  options.exchange_strategy = config_.mcmf_strategy;
  options.audit_level = config_.audit_level;

  const auto& members = shard_plan_.assignment.members;
  ShardedSolveOutcome outcome = solve_sharded(
      context.hotspots, context.hotspot_index, partition,
      shard_plan_.assignment, shard_plan_.boundary, options,
      [&](std::uint32_t s) {
        return solve_shard_instance(child_config, context.hotspots, demand,
                                    members[s]);
      });

  diagnostics_.moved = outcome.moved;
  diagnostics_.shards = num_shards;
  diagnostics_.boundary_hotspots = outcome.boundary_hotspots;
  diagnostics_.exchange_moved = outcome.exchange_moved;
  diagnostics_.shard_wall_s = outcome.shard_wall_s;
  diagnostics_.exchange_s = outcome.exchange_s;
  for (const ShardFlowResult& shard : outcome.shards) {
    diagnostics_.num_clusters += shard.num_clusters;
    diagnostics_.guide_nodes += shard.guide_nodes;
    diagnostics_.theta_iterations =
        std::max(diagnostics_.theta_iterations, shard.theta_iterations);
    diagnostics_.shard_flow_s.push_back(shard.graph_s + shard.mcmf_s);
    diagnostics_.shard_rss_mb.push_back(shard.peak_rss_mb);
    // Stage timings report the parallel critical path: the slowest shard
    // per stage, plus the exchange round on the MCMF stage.
    stage_timings_.gc_build_s =
        std::max(stage_timings_.gc_build_s, shard.gc_build_s);
    stage_timings_.graph_s = std::max(stage_timings_.graph_s, shard.graph_s);
    stage_timings_.mcmf_s = std::max(stage_timings_.mcmf_s, shard.mcmf_s);
  }
  stage_timings_.mcmf_s += outcome.exchange_s;
  return std::move(outcome.flows);
}

void RbcaerScheme::redirect_local_misses(const SchemeContext& context,
                                         std::span<const Request> requests,
                                         SlotPlan& plan) const {
  const std::size_t m = context.hotspots.size();
  const auto cached = [&](std::size_t h, VideoId v) {
    return std::binary_search(plan.placements[h].begin(),
                              plan.placements[h].end(), v);
  };
  // Capacity already spoken for by servable assignments.
  std::vector<std::int64_t> capacity_left(m);
  for (std::size_t h = 0; h < m; ++h) {
    capacity_left[h] =
        static_cast<std::int64_t>(context.hotspots[h].service_capacity);
  }
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const HotspotIndex target = plan.assignment[r];
    if (target != kCdnServer && cached(target, requests[r].video)) {
      --capacity_left[target];  // may go negative at overloaded homes
    }
  }
  // Neighbour lists are shared per home hotspot (as in RandomScheme).
  std::vector<std::vector<std::size_t>> neighbours(m);
  std::size_t rerouted = 0;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const HotspotIndex home = plan.assignment[r];
    if (home == kCdnServer || home >= m) continue;
    if (cached(home, requests[r].video)) continue;  // served locally
    auto& pool = neighbours[home];
    if (pool.empty()) {
      pool = context.hotspot_index.within_radius(
          context.hotspots[home].location, config_.theta2_km);
    }
    // Nearest candidate with the video and spare capacity. The pool is
    // small (θ2-radius), so a linear scan with distance tracking is fine.
    std::size_t best = m;
    double best_distance = 0.0;
    for (const std::size_t candidate : pool) {
      if (candidate == home || capacity_left[candidate] <= 0) continue;
      if (!cached(candidate, requests[r].video)) continue;
      const double d = distance_km(requests[r].location,
                                   context.hotspots[candidate].location);
      if (best == m || d < best_distance) {
        best = candidate;
        best_distance = d;
      }
    }
    if (best == m) continue;  // genuinely nowhere to go but the CDN
    plan.assignment[r] = static_cast<HotspotIndex>(best);
    --capacity_left[best];
    ++rerouted;
  }
  diagnostics_.miss_rerouted = rerouted;
}

}  // namespace ccdn
