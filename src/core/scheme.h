// Request-redirection scheme interface.
//
// A scheme receives one timeslot's requests (plus their aggregation at the
// nearest hotspots) and produces a SlotPlan: the content placement y_vj and
// a serving hotspot per request (x_ij, with kCdnServer playing x_iS). The
// simulator then *admits* the plan, enforcing placement and service-capacity
// constraints uniformly across schemes — a scheme that over-assigns (e.g.
// Nearest routing at a crowded hotspot) sees its excess rejected to the CDN,
// exactly the inefficiency the paper measures.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "geo/grid_index.h"
#include "model/demand.h"
#include "model/types.h"

namespace ccdn {

/// Immutable per-run context shared by all slots.
struct SchemeContext {
  const std::vector<Hotspot>& hotspots;
  /// Spatial index over the hotspot locations (same order as `hotspots`).
  const GridIndex& hotspot_index;
  VideoCatalog catalog;
  double cdn_distance_km = kCdnDistanceKm;
};

/// One slot's joint decision.
struct SlotPlan {
  /// y_vj: videos replicated at each hotspot, sorted ascending by id.
  std::vector<std::vector<VideoId>> placements;
  /// x_ij: serving hotspot per request (parallel to the slot's request
  /// span), or kCdnServer.
  std::vector<HotspotIndex> assignment;

  /// Total replicas across hotspots (Ω2 for this slot).
  [[nodiscard]] std::size_t total_replicas() const noexcept;
  /// True if every placement list is sorted, unique, and within the cache
  /// capacity of its hotspot.
  [[nodiscard]] bool respects_caches(
      const std::vector<Hotspot>& hotspots) const;
};

/// Number of (hotspot, video) placements in `current` that are not in
/// `previous` — the origin pushes needed to transition between slots
/// (hotspot caches persist; placements are sorted per hotspot).
[[nodiscard]] std::size_t count_new_replicas(
    const std::vector<std::vector<VideoId>>& previous,
    const std::vector<std::vector<VideoId>>& current);

class RedirectionScheme {
 public:
  virtual ~RedirectionScheme() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Plan one timeslot. `requests` and `demand` describe the same slot;
  /// `demand.request_home()` is parallel to `requests`.
  [[nodiscard]] virtual SlotPlan plan_slot(const SchemeContext& context,
                                           std::span<const Request> requests,
                                           const SlotDemand& demand) = 0;
};

using SchemePtr = std::unique_ptr<RedirectionScheme>;

}  // namespace ccdn
