// Request-redirection scheme interface.
//
// A scheme receives one timeslot's requests (plus their aggregation at the
// nearest hotspots) and produces a SlotPlan: the content placement y_vj and
// a serving hotspot per request (x_ij, with kCdnServer playing x_iS). The
// simulator then *admits* the plan, enforcing placement and service-capacity
// constraints uniformly across schemes — a scheme that over-assigns (e.g.
// Nearest routing at a crowded hotspot) sees its excess rejected to the CDN,
// exactly the inefficiency the paper measures.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "geo/grid_index.h"
#include "model/demand.h"
#include "model/types.h"

namespace ccdn {

/// Per-slot wall-clock breakdown of the scheduling pipeline. The demand and
/// admit stages are timed by the simulator; the planning stages are filled
/// in by schemes that support introspection (see
/// RedirectionScheme::last_stage_timings). All values are seconds.
struct StageTimings {
  double demand_s = 0.0;       // request aggregation into SlotDemand
  double partition_s = 0.0;    // H_s/H_t split
  double gc_build_s = 0.0;     // content clustering: top sets + Jd + cut
  double graph_s = 0.0;        // Gd/Gc construction (all θ iterations)
  double mcmf_s = 0.0;         // min-cost max-flow solves
  double replication_s = 0.0;  // Procedure 1 + assignment materialization
  double admit_s = 0.0;        // capacity/placement admission

  StageTimings& operator+=(const StageTimings& other) noexcept {
    demand_s += other.demand_s;
    partition_s += other.partition_s;
    gc_build_s += other.gc_build_s;
    graph_s += other.graph_s;
    mcmf_s += other.mcmf_s;
    replication_s += other.replication_s;
    admit_s += other.admit_s;
    return *this;
  }

  [[nodiscard]] double total_s() const noexcept {
    return demand_s + partition_s + gc_build_s + graph_s + mcmf_s +
           replication_s + admit_s;
  }
};

/// Immutable per-run context shared by all slots.
struct SchemeContext {
  const std::vector<Hotspot>& hotspots;
  /// Spatial index over the hotspot locations (same order as `hotspots`).
  const GridIndex& hotspot_index;
  VideoCatalog catalog;
  double cdn_distance_km = kCdnDistanceKm;
  /// Simulation-wide shard count for schemes that support zone-sharded
  /// planning (DESIGN.md §3.12). 0 = unsharded. Schemes may override via
  /// their own config; schemes without a sharded path ignore it.
  std::size_t num_shards = 0;
  /// True when plan_slot is being invoked from a multithreaded executor
  /// (the simulator's clone-ring lanes). Sharded schemes must then demote
  /// ShardExecutor::kFork to kInProcess: fork() from a process whose other
  /// threads may hold allocator/logger locks can deadlock the child, which
  /// inherits the locked state but not the threads that would release it.
  /// The two executors are bit-identical, so only the execution mechanism
  /// changes (DESIGN.md §3.13).
  bool threaded_executor = false;
};

/// One slot's joint decision.
struct SlotPlan {
  /// y_vj: videos replicated at each hotspot, sorted ascending by id.
  std::vector<std::vector<VideoId>> placements;
  /// x_ij: serving hotspot per request (parallel to the slot's request
  /// span), or kCdnServer.
  std::vector<HotspotIndex> assignment;

  /// Total replicas across hotspots (Ω2 for this slot).
  [[nodiscard]] std::size_t total_replicas() const noexcept;
  /// True if every placement list is sorted, unique, and within the cache
  /// capacity of its hotspot.
  [[nodiscard]] bool respects_caches(
      const std::vector<Hotspot>& hotspots) const;
};

/// Number of (hotspot, video) placements in `current` that are not in
/// `previous` — the origin pushes needed to transition between slots
/// (hotspot caches persist; placements are sorted per hotspot).
[[nodiscard]] std::size_t count_new_replicas(
    const std::vector<std::vector<VideoId>>& previous,
    const std::vector<std::vector<VideoId>>& current);

class RedirectionScheme;
using SchemePtr = std::unique_ptr<RedirectionScheme>;

class RedirectionScheme {
 public:
  virtual ~RedirectionScheme() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Plan one timeslot. `requests` and `demand` describe the same slot;
  /// `demand.request_home()` is parallel to `requests`.
  [[nodiscard]] virtual SlotPlan plan_slot(const SchemeContext& context,
                                           std::span<const Request> requests,
                                           const SlotDemand& demand) = 0;

  /// Independent copy for concurrent planning. Schemes whose plan_slot is a
  /// pure function of (context, requests, demand) return a fresh instance;
  /// schemes with cross-slot state (e.g. the Random baseline's RNG draws)
  /// keep the default nullptr, which makes the parallel simulator fall back
  /// to sequential planning so results never depend on thread interleaving.
  [[nodiscard]] virtual SchemePtr clone() const { return nullptr; }

  /// Stage breakdown of the most recent plan_slot call, or nullptr for
  /// schemes that do not record one.
  [[nodiscard]] virtual const StageTimings* last_stage_timings() const {
    return nullptr;
  }
};

}  // namespace ccdn
