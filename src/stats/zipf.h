// Zipf popularity model for video catalogs.
//
// The paper's measurement notes that video popularity follows the 80/20
// Pareto rule (top 20% of videos attract ~80% of requests). ZipfDistribution
// samples ranks from a Zipf(s) law; `calibrate_zipf_exponent` finds the
// exponent for which the top `head_fraction` of a catalog of size n carries
// `head_mass` of the probability.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace ccdn {

class ZipfDistribution {
 public:
  /// Zipf over ranks {0, ..., n-1} with P(rank k) ∝ 1/(k+1)^exponent.
  /// Requires n >= 1 and exponent >= 0.
  ZipfDistribution(std::size_t n, double exponent);

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] double exponent() const noexcept { return exponent_; }

  /// Probability of a given rank.
  [[nodiscard]] double probability(std::size_t rank) const;

  /// Cumulative probability of ranks 0..rank inclusive.
  [[nodiscard]] double cumulative(std::size_t rank) const;

  /// Sample a rank in O(log n).
  [[nodiscard]] std::size_t sample(Rng& rng) const;

 private:
  double exponent_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k), cdf_.back() == 1
};

/// Find the Zipf exponent such that the first ceil(head_fraction * n) ranks
/// carry head_mass of the total probability (bisection; head_fraction and
/// head_mass strictly inside (0, 1), n >= 2).
[[nodiscard]] double calibrate_zipf_exponent(std::size_t n,
                                             double head_fraction,
                                             double head_mass);

}  // namespace ccdn
