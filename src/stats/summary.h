// Streaming summary statistics (Welford's online algorithm).
#pragma once

#include <cstddef>
#include <limits>

namespace ccdn {

class StreamingStats {
 public:
  void add(double value) noexcept;

  /// Merge another accumulator into this one (parallel-friendly).
  void merge(const StreamingStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept {
    return mean_ * static_cast<double>(count_);
  }
  /// Mean of the observed values; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Population variance; 0 when fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  /// Sample (Bessel-corrected) variance; 0 when fewer than 2 samples.
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace ccdn
