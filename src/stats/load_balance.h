// Load-balance indices over per-hotspot workloads.
//
// Complements the quantile view of Fig. 2 with the standard scalar
// summaries of imbalance: Gini coefficient, coefficient of variation, and
// Jain's fairness index.
#pragma once

#include <span>

namespace ccdn {

/// Gini coefficient in [0, 1): 0 = perfectly even, ->1 = one hotspot takes
/// everything. Requires non-negative values; all-zero input returns 0.
[[nodiscard]] double gini_coefficient(std::span<const double> values);

/// Standard deviation / mean; 0 when the mean is 0.
[[nodiscard]] double coefficient_of_variation(std::span<const double> values);

/// Jain's fairness index in (0, 1]: 1 = perfectly even, 1/n = maximally
/// unfair. All-zero input returns 1 (vacuously fair).
[[nodiscard]] double jains_fairness_index(std::span<const double> values);

}  // namespace ccdn
