#include "stats/load_balance.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/error.h"

namespace ccdn {

double gini_coefficient(std::span<const double> values) {
  CCDN_REQUIRE(!values.empty(), "empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  for (const double v : sorted) {
    CCDN_REQUIRE(v >= 0.0, "negative value in Gini input");
  }
  std::sort(sorted.begin(), sorted.end());
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  if (total == 0.0) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  double weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted += static_cast<double>(i + 1) * sorted[i];
  }
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

double coefficient_of_variation(std::span<const double> values) {
  CCDN_REQUIRE(!values.empty(), "empty sample");
  const double mean =
      std::accumulate(values.begin(), values.end(), 0.0) /
      static_cast<double>(values.size());
  if (mean == 0.0) return 0.0;
  double variance = 0.0;
  for (const double v : values) variance += (v - mean) * (v - mean);
  variance /= static_cast<double>(values.size());
  return std::sqrt(variance) / mean;
}

double jains_fairness_index(std::span<const double> values) {
  CCDN_REQUIRE(!values.empty(), "empty sample");
  const double sum = std::accumulate(values.begin(), values.end(), 0.0);
  double sum_sq = 0.0;
  for (const double v : values) sum_sq += v * v;
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

}  // namespace ccdn
