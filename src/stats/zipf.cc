#include "stats/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace ccdn {

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent)
    : exponent_(exponent), cdf_(n) {
  CCDN_REQUIRE(n >= 1, "empty support");
  CCDN_REQUIRE(exponent >= 0.0, "negative exponent");
  double running = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    running += std::pow(static_cast<double>(k + 1), -exponent);
    cdf_[k] = running;
  }
  for (auto& value : cdf_) value /= running;
  cdf_.back() = 1.0;  // guard against rounding
}

double ZipfDistribution::probability(std::size_t rank) const {
  CCDN_REQUIRE(rank < cdf_.size(), "rank out of range");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

double ZipfDistribution::cumulative(std::size_t rank) const {
  CCDN_REQUIRE(rank < cdf_.size(), "rank out of range");
  return cdf_[rank];
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<std::size_t>(it - cdf_.begin());
}

double calibrate_zipf_exponent(std::size_t n, double head_fraction,
                               double head_mass) {
  CCDN_REQUIRE(n >= 2, "catalog too small to calibrate");
  CCDN_REQUIRE(head_fraction > 0.0 && head_fraction < 1.0,
               "head_fraction outside (0,1)");
  CCDN_REQUIRE(head_mass > 0.0 && head_mass < 1.0, "head_mass outside (0,1)");
  CCDN_REQUIRE(head_mass >= head_fraction,
               "head cannot carry less than uniform mass");
  const std::size_t head =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   std::ceil(head_fraction * static_cast<double>(n))));
  const auto head_share = [&](double exponent) {
    // Mass of ranks < head under Zipf(exponent).
    double head_sum = 0.0;
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      const double w = std::pow(static_cast<double>(k + 1), -exponent);
      total += w;
      if (k < head) head_sum += w;
    }
    return head_sum / total;
  };
  double lo = 0.0;
  double hi = 8.0;
  // head_share is monotone increasing in the exponent.
  for (int iter = 0; iter < 64; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (head_share(mid) < head_mass) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

}  // namespace ccdn
