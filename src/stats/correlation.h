// Pearson and Spearman correlation.
//
// Spearman rank correlation over per-timeslot workloads quantifies the
// cooperation potential between nearby hotspots (paper Fig. 3a).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ccdn {

/// Pearson product-moment correlation of two equal-length series.
/// Returns 0 when either series has zero variance. Requires length >= 2.
[[nodiscard]] double pearson_correlation(std::span<const double> xs,
                                         std::span<const double> ys);

/// Average ranks (1-based) with ties sharing their mean rank.
[[nodiscard]] std::vector<double> average_ranks(std::span<const double> values);

/// Spearman rank correlation: Pearson over average ranks (tie-aware).
[[nodiscard]] double spearman_correlation(std::span<const double> xs,
                                          std::span<const double> ys);

/// Jaccard similarity |A ∩ B| / |A ∪ B| over sorted unique ID vectors
/// (paper Eq. 1). Two empty sets have similarity 0.
[[nodiscard]] double jaccard_similarity(std::span<const std::uint32_t> a,
                                        std::span<const std::uint32_t> b);

}  // namespace ccdn
