#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"

namespace ccdn {

double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) {
  CCDN_REQUIRE(xs.size() == ys.size(), "series length mismatch");
  CCDN_REQUIRE(xs.size() >= 2, "need at least two observations");
  const double n = static_cast<double>(xs.size());
  const double mean_x = std::accumulate(xs.begin(), xs.end(), 0.0) / n;
  const double mean_y = std::accumulate(ys.begin(), ys.end(), 0.0) / n;
  double cov = 0.0;
  double var_x = 0.0;
  double var_y = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mean_x;
    const double dy = ys[i] - mean_y;
    cov += dx * dy;
    var_x += dx * dx;
    var_y += dy * dy;
  }
  if (var_x == 0.0 || var_y == 0.0) return 0.0;
  return cov / std::sqrt(var_x * var_y);
}

std::vector<double> average_ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Positions i..j (0-based) share the mean of 1-based ranks i+1..j+1.
    const double shared = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = shared;
    i = j + 1;
  }
  return ranks;
}

double spearman_correlation(std::span<const double> xs,
                            std::span<const double> ys) {
  CCDN_REQUIRE(xs.size() == ys.size(), "series length mismatch");
  CCDN_REQUIRE(xs.size() >= 2, "need at least two observations");
  const std::vector<double> rank_x = average_ranks(xs);
  const std::vector<double> rank_y = average_ranks(ys);
  return pearson_correlation(rank_x, rank_y);
}

double jaccard_similarity(std::span<const std::uint32_t> a,
                          std::span<const std::uint32_t> b) {
  CCDN_REQUIRE(std::is_sorted(a.begin(), a.end()), "set A not sorted");
  CCDN_REQUIRE(std::is_sorted(b.begin(), b.end()), "set B not sorted");
  if (a.empty() && b.empty()) return 0.0;
  std::size_t intersection = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const std::size_t union_size = a.size() + b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(union_size);
}

}  // namespace ccdn
