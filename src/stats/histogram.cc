#include "stats/histogram.h"

#include "util/error.h"

namespace ccdn {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  CCDN_REQUIRE(lo < hi, "histogram range inverted");
  CCDN_REQUIRE(bins >= 1, "histogram needs at least one bin");
}

void Histogram::add(double value) noexcept {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((value - lo_) / width_);
  if (bin >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[bin];
}

std::uint64_t Histogram::count(std::size_t bin) const {
  CCDN_REQUIRE(bin < counts_.size(), "bin out of range");
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  CCDN_REQUIRE(bin < counts_.size(), "bin out of range");
  return lo_ + width_ * (static_cast<double>(bin) + 0.5);
}

std::vector<double> Histogram::normalized() const {
  std::vector<double> out(counts_.size(), 0.0);
  std::uint64_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(in_range);
  }
  return out;
}

}  // namespace ccdn
