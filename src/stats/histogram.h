// Fixed-width binned histogram.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccdn {

class Histogram {
 public:
  /// Bins of equal width covering [lo, hi); values outside the range are
  /// counted in underflow/overflow. Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const;
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Midpoint value of a bin.
  [[nodiscard]] double bin_center(std::size_t bin) const;
  [[nodiscard]] double bin_width() const noexcept { return width_; }

  /// Fraction of in-range mass in each bin (empty histogram -> all zeros).
  [[nodiscard]] std::vector<double> normalized() const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace ccdn
