// Empirical cumulative distribution over a sample.
//
// Backs every CDF figure in the paper (Figs. 2, 3a, 3b): quantile lookups
// (median, 99th percentile) and evenly spaced CDF series for plotting.
#pragma once

#include <cstddef>
#include <vector>

namespace ccdn {

class EmpiricalCdf {
 public:
  /// Takes ownership of the sample; sorts it once. Requires non-empty data.
  explicit EmpiricalCdf(std::vector<double> samples);

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] double min() const noexcept { return sorted_.front(); }
  [[nodiscard]] double max() const noexcept { return sorted_.back(); }

  /// Quantile with linear interpolation; q in [0, 1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  /// Fraction of samples <= value.
  [[nodiscard]] double fraction_at_most(double value) const noexcept;

  /// (value, cumulative fraction) series with `points` evenly spaced value
  /// steps across [min, max] — ready to print/plot. Requires points >= 2.
  [[nodiscard]] std::vector<std::pair<double, double>> series(
      std::size_t points) const;

  [[nodiscard]] const std::vector<double>& sorted_samples() const noexcept {
    return sorted_;
  }

 private:
  std::vector<double> sorted_;
};

}  // namespace ccdn
