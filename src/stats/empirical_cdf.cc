#include "stats/empirical_cdf.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace ccdn {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  CCDN_REQUIRE(!sorted_.empty(), "empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::quantile(double q) const {
  CCDN_REQUIRE(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
  if (sorted_.size() == 1) return sorted_.front();
  const double position = q * static_cast<double>(sorted_.size() - 1);
  const std::size_t lower = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lower] + fraction * (sorted_[lower + 1] - sorted_[lower]);
}

double EmpiricalCdf::fraction_at_most(double value) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), value);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

std::vector<std::pair<double, double>> EmpiricalCdf::series(
    std::size_t points) const {
  CCDN_REQUIRE(points >= 2, "need at least 2 series points");
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  const double lo = min();
  const double hi = max();
  for (std::size_t i = 0; i < points; ++i) {
    const double value =
        lo + (hi - lo) * static_cast<double>(i) /
                 static_cast<double>(points - 1);
    out.emplace_back(value, fraction_at_most(value));
  }
  return out;
}

}  // namespace ccdn
