// Invariant-audit vocabulary shared by the flow and schedule auditors.
//
// An audit walks an already-computed artifact (a solved FlowNetwork, a
// SlotPlan, a ReplicationResult) and records every violated invariant into
// an AuditReport instead of throwing at the first one, so negative-path
// tests can assert exactly which invariant broke and production call sites
// can escalate the whole report at once via require_clean().
//
// The audit *functions* are ordinary code, available in every build (the
// audit_run tool replays traces through them even in release binaries).
// The in-pipeline *call sites* (scheme, sweeper, simulator) are gated on
// AuditLevel and compiled out under NDEBUG through kCheckedBuild, so a
// release build pays nothing — see DESIGN.md §3.8.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/error.h"

namespace ccdn {

/// How much auditing the scheduling pipeline performs per slot.
enum class AuditLevel : std::uint8_t {
  /// No auditing (production default; zero overhead).
  kOff = 0,
  /// Audit each slot's finished plan (assignment totality, cache and
  /// capacity feasibility, replication budget) and record its digest.
  kPlan = 1,
  /// kPlan plus flow-level audits on every committed network: conservation,
  /// capacity bounds, and residual reduced-cost validity at each θ-sweep
  /// commit. Expensive; meant for tests, audit_run, and bug hunts.
  kFull = 2,
};

/// One violated invariant.
struct AuditViolation {
  /// Stable machine-readable name, e.g. "flow-conservation".
  std::string invariant;
  /// Human-readable context: which node/hotspot/edge, observed vs bound.
  std::string detail;
};

/// Accumulates violations across the audit functions applied to one artifact.
class AuditReport {
 public:
  void add(std::string invariant, std::string detail) {
    violations_.push_back({std::move(invariant), std::move(detail)});
  }

  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<AuditViolation>& violations() const noexcept {
    return violations_;
  }

  /// True when some recorded violation names `invariant` exactly.
  [[nodiscard]] bool has(const std::string& invariant) const noexcept {
    for (const auto& v : violations_) {
      if (v.invariant == invariant) return true;
    }
    return false;
  }

  /// One line per violation ("[invariant] detail"); empty string when ok.
  [[nodiscard]] std::string summary() const {
    std::string out;
    for (const auto& v : violations_) {
      if (!out.empty()) out += "; ";
      out += "[" + v.invariant + "] " + v.detail;
    }
    return out;
  }

  /// Throw InvariantError listing every violation unless the report is
  /// clean. `context` names the audited artifact ("theta-sweep commit",
  /// "rbcaer slot plan", ...).
  void require_clean(const char* context) const {
    CCDN_ENSURE(ok(), std::string("audit failed (") + context + "): " +
                          summary());
  }

 private:
  std::vector<AuditViolation> violations_;
};

}  // namespace ccdn
