// Sharded-plan invariant audits (zone-sharded scheduler, DESIGN.md §3.12).
//
// The sharded orchestration makes structural promises beyond what
// audit_flow_entries checks on the merged plan: each shard's flows stay
// inside that shard, and every exchange-round flow is *sent* by a boundary
// hotspot (the exchange round matches boundary senders' residual overload
// against global residual slack, so its receivers may sit in any shard,
// the sender's own included). These audits
// verify exactly those promises; the merged plan then goes through the
// ordinary audit_flow_entries / audit_slot_plan pipeline (the global
// slack, capacity and budget contracts are shard-agnostic).
#pragma once

#include <cstdint>
#include <span>

#include "core/balance_graph.h"
#include "verify/audit.h"

namespace ccdn {

/// Flows returned by one shard's local solve, in global hotspot ids:
///  - positive amounts ("shard-flow-nonpositive"),
///  - endpoints inside `shard_of` ("shard-endpoint-range"),
///  - both endpoints in shard `shard` ("shard-locality").
void audit_shard_flows(std::span<const FlowEntry> flows,
                       std::span<const std::uint32_t> shard_of,
                       std::uint32_t shard, AuditReport& report);

/// Flows of the cross-shard exchange round:
///  - positive amounts ("exchange-flow-nonpositive"),
///  - endpoints inside `shard_of` ("exchange-endpoint-range"),
///  - the sender flagged in the `boundary` mask ("exchange-not-boundary");
///    receivers are unconstrained — the round matches residual overload to
///    global residual slack, so a flow may stay inside the sender's shard.
void audit_exchange_flows(std::span<const FlowEntry> flows,
                          std::span<const std::uint32_t> shard_of,
                          std::span<const std::uint8_t> boundary,
                          AuditReport& report);

}  // namespace ccdn
