// Flow-side invariant audits: conservation, capacity bounds, reduced-cost
// validity, and the f_ij-vs-slack contracts of Algorithm 1.
//
// By default these checks walk edge *storage*, not adjacency lists, so they
// stay correct on networks the θ sweep has compacted (drop_dead_arcs,
// focus_out_edges only shrink adjacency; flow() and edge() read storage).
// The reduced-cost audits additionally take an ArcWalk selector: carried
// solver potentials are only required to price the arcs a search can
// actually traverse, so those call sites audit adjacency instead.
#pragma once

#include <cstdint>
#include <span>

#include "core/balance_graph.h"
#include "flow/network.h"
#include "verify/audit.h"

namespace ccdn {

/// Conservation and capacity bounds of the current flow:
///  - every forward edge carries 0 <= flow <= original capacity
///    ("edge-flow-negative" / "edge-over-capacity"),
///  - net flow is zero at every interior node ("flow-conservation"),
///  - the source emits what the sink absorbs, and not the other way
///    around ("terminal-imbalance").
void audit_flow_conservation(const FlowNetwork& net, NodeId source,
                             NodeId sink, AuditReport& report);

/// Which arcs a reduced-cost audit prices.
///
/// kStore walks raw edge storage, so adjacency compactions (drop_dead_arcs,
/// drop_terminal_arcs, focus_out_edges) cannot hide an arc — the right
/// semantics for commit-time checks, where a surviving negative arc means a
/// stale residual escaped the freeze. kTraversable walks the adjacency
/// lists instead, pricing exactly the arcs a search can relax — the right
/// semantics for validating *carried potentials*: an arc the sweep parked
/// (a dormant sender's source arc after focus_out_edges) keeps a stale
/// price by design, and cannot mislead Dijkstra precisely because it is in
/// no adjacency slice; the seeded re-price clamps it again on re-awakening.
enum class ArcWalk { kStore, kTraversable };

/// Every arc with positive residual capacity must price non-negatively
/// under `potentials`: cost + pi[from] - pi[to] >= -eps
/// ("negative-reduced-cost"). Pass an empty span for zero potentials — the
/// post-freeze_residuals() state, where every live arc is a forward arc
/// whose raw cost must be non-negative. A potentials span shorter than the
/// node count is reported as "potentials-missing". `walk` selects the arc
/// set (see ArcWalk); storage is the default.
void audit_reduced_costs(const FlowNetwork& net,
                         std::span<const double> potentials,
                         AuditReport& report, ArcWalk walk = ArcWalk::kStore);

/// Integer-domain twin of audit_reduced_costs for the fixed-point MCMF
/// engine: every positive-residual arc must satisfy
/// qcost + pi[from] - pi[to] >= 0 *exactly* — the quantized domain has no
/// float noise to tolerate, and converting the integer potentials to
/// doubles for the km-domain check would re-introduce exactly the
/// quantization error the 1e-9 tolerance cannot absorb. Pass an empty span
/// for zero potentials. Requires net.integer_costs().
void audit_reduced_costs_int(const FlowNetwork& net,
                             std::span<const std::int64_t> potentials,
                             AuditReport& report,
                             ArcWalk walk = ArcWalk::kStore);

/// Optimality certificate for a transient epoch's residual graph *before*
/// truncate() discards it. A min-cost flow's residual graph admits no
/// negative-cost cycle; equivalently, a potential vector exists under which
/// every positive-capacity arc prices non-negatively. This audit derives
/// such a vector itself — an everywhere-seeded Bellman-Ford over edge
/// storage (every node starts at 0, so no reachability assumptions) — and
/// reports "negative-residual-cycle" when the relaxation fails to converge
/// within num_nodes rounds, which happens exactly when such a cycle exists.
/// On convergence the derived potentials are fed through
/// audit_reduced_costs() as a self-check. Unlike audit_reduced_costs()
/// against solver-carried potentials, this never false-positives on
/// networks whose carried prices are merely stale.
void audit_epoch_residual(const FlowNetwork& net, AuditReport& report);

/// Integer-domain twin of audit_epoch_residual: the everywhere-seeded
/// Bellman-Ford runs over qcost(), so it certifies min-cost with respect to
/// the quantized objective the integer engine actually optimized. A flow
/// that is min-cost in the quantized domain may sit a sub-quantum away from
/// the double optimum — auditing it with the km-domain relaxation would
/// false-positive on exactly those ties. Requires net.integer_costs().
void audit_epoch_residual_int(const FlowNetwork& net, AuditReport& report);

/// The per-pair flows extracted from a slot's sweep, checked against the
/// partition's *initial* slack (phi as of HotspotPartition::from_loads):
///  - entries are positive with in-range endpoints
///    ("flow-entry-nonpositive" / "flow-endpoint-range"),
///  - flow runs overloaded -> under-utilized ("flow-direction"),
///  - per-hotspot totals respect phi: sum_j f_ij <= phi0_i and
///    sum_i f_ij <= phi0_j ("flow-exceeds-slack").
/// `initial_phi` must have one entry per hotspot.
void audit_flow_entries(std::span<const FlowEntry> flows,
                        const HotspotPartition& partition,
                        std::span<const std::int64_t> initial_phi,
                        AuditReport& report);

}  // namespace ccdn
