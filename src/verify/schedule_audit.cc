#include "verify/schedule_audit.h"

#include <algorithm>
#include <string>

namespace ccdn {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_u32(std::uint64_t& h, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    h ^= (value >> shift) & 0xffu;
    h *= kFnvPrime;
  }
}

bool placed_at(const std::vector<std::vector<VideoId>>& placements,
               std::size_t h, VideoId v) {
  return std::binary_search(placements[h].begin(), placements[h].end(), v);
}

}  // namespace

std::uint64_t plan_digest(std::span<const HotspotIndex> assignment,
                          const std::vector<std::vector<VideoId>>& placements) {
  std::uint64_t h = kFnvOffset;
  fnv_u32(h, static_cast<std::uint32_t>(assignment.size()));
  for (const HotspotIndex a : assignment) fnv_u32(h, a);
  fnv_u32(h, static_cast<std::uint32_t>(placements.size()));
  for (const auto& list : placements) {
    fnv_u32(h, static_cast<std::uint32_t>(list.size()));
    for (const VideoId v : list) fnv_u32(h, v);
  }
  return h;
}

void audit_assignment(std::span<const HotspotIndex> assignment,
                      std::size_t num_requests, std::size_t num_hotspots,
                      AuditReport& report) {
  if (assignment.size() != num_requests) {
    report.add("assignment-size",
               std::to_string(assignment.size()) + " entries for " +
                   std::to_string(num_requests) + " requests");
  }
  for (std::size_t r = 0; r < assignment.size(); ++r) {
    const HotspotIndex target = assignment[r];
    if (target != kCdnServer && target >= num_hotspots) {
      report.add("assignment-range",
                 "request " + std::to_string(r) + " assigned to " +
                     std::to_string(target) + " of " +
                     std::to_string(num_hotspots) + " hotspots");
    }
  }
}

void audit_placements(const std::vector<std::vector<VideoId>>& placements,
                      std::span<const Hotspot> hotspots, AuditReport& report) {
  if (placements.size() != hotspots.size()) {
    report.add("placement-count",
               std::to_string(placements.size()) + " placement lists for " +
                   std::to_string(hotspots.size()) + " hotspots");
    return;
  }
  for (std::size_t h = 0; h < placements.size(); ++h) {
    const auto& list = placements[h];
    for (std::size_t i = 1; i < list.size(); ++i) {
      if (list[i - 1] >= list[i]) {
        report.add("placement-order",
                   "hotspot " + std::to_string(h) +
                       " placement not strictly ascending at position " +
                       std::to_string(i));
        break;
      }
    }
    if (list.size() > hotspots[h].cache_capacity) {
      report.add("cache-capacity",
                 "hotspot " + std::to_string(h) + " caches " +
                     std::to_string(list.size()) + " > c_h " +
                     std::to_string(hotspots[h].cache_capacity));
    }
  }
}

void audit_capacity(std::span<const HotspotIndex> assignment,
                    const std::vector<std::vector<VideoId>>& placements,
                    std::span<const Hotspot> hotspots,
                    std::span<const Request> requests,
                    std::span<const HotspotIndex> homes,
                    AuditReport& report) {
  const std::size_t m = hotspots.size();
  if (assignment.size() != requests.size() || homes.size() != requests.size() ||
      placements.size() != m) {
    report.add("capacity-audit-shape",
               "assignment/homes/placements sizes do not match the slot");
    return;
  }
  std::vector<std::int64_t> home_servable(m, 0);
  std::vector<std::int64_t> inbound(m, 0);
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const HotspotIndex target = assignment[r];
    if (target == kCdnServer || target >= m) continue;
    if (target == homes[r]) {
      if (placed_at(placements, target, requests[r].video)) {
        ++home_servable[target];
      }
      continue;
    }
    // A redirected request that lands on a cache miss is pure waste: the
    // scheduler moved it somewhere admission must reject.
    if (!placed_at(placements, target, requests[r].video)) {
      report.add("redirect-miss",
                 "request " + std::to_string(r) + " redirected to hotspot " +
                     std::to_string(target) + " which lacks video " +
                     std::to_string(requests[r].video));
      continue;
    }
    ++inbound[target];
  }
  for (std::size_t j = 0; j < m; ++j) {
    const auto s_j = static_cast<std::int64_t>(hotspots[j].service_capacity);
    const std::int64_t room = std::max<std::int64_t>(0, s_j - home_servable[j]);
    if (inbound[j] > room) {
      report.add("service-capacity",
                 "hotspot " + std::to_string(j) + " receives " +
                     std::to_string(inbound[j]) +
                     " redirected requests but only " + std::to_string(room) +
                     " of s_h " + std::to_string(s_j) +
                     " remain after local demand");
    }
  }
}

void audit_total_capacity(std::span<const HotspotIndex> assignment,
                          const std::vector<std::vector<VideoId>>& placements,
                          std::span<const Hotspot> hotspots,
                          std::span<const Request> requests,
                          AuditReport& report) {
  const std::size_t m = hotspots.size();
  if (assignment.size() != requests.size() || placements.size() != m) {
    report.add("capacity-audit-shape",
               "assignment/placements sizes do not match the slot");
    return;
  }
  std::vector<std::int64_t> assigned(m, 0);
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const HotspotIndex target = assignment[r];
    if (target == kCdnServer || target >= m) continue;
    if (!placed_at(placements, target, requests[r].video)) {
      report.add("assignment-miss",
                 "request " + std::to_string(r) + " assigned to hotspot " +
                     std::to_string(target) + " which lacks video " +
                     std::to_string(requests[r].video));
      continue;
    }
    ++assigned[target];
  }
  for (std::size_t j = 0; j < m; ++j) {
    const auto s_j = static_cast<std::int64_t>(hotspots[j].service_capacity);
    if (assigned[j] > s_j) {
      report.add("total-capacity",
                 "hotspot " + std::to_string(j) + " is assigned " +
                     std::to_string(assigned[j]) + " requests > s_h " +
                     std::to_string(s_j));
    }
  }
}

void audit_replication(const ReplicationResult& result,
                       std::span<const Hotspot> hotspots,
                       std::size_t replica_budget, AuditReport& report) {
  audit_placements(result.placements, hotspots, report);

  std::size_t placed = 0;
  for (const auto& list : result.placements) placed += list.size();
  if (placed != result.replicas) {
    report.add("replica-count",
               "result reports " + std::to_string(result.replicas) +
                   " replicas but placements hold " + std::to_string(placed));
  }
  if (result.replicas > replica_budget) {
    report.add("replication-budget",
               std::to_string(result.replicas) + " replicas exceed B_peak " +
                   std::to_string(replica_budget));
  }

  const std::size_t m = hotspots.size();
  std::int64_t redirected = 0;
  for (std::size_t origin = 0; origin < result.redirects.size(); ++origin) {
    for (const auto& vr : result.redirects[origin]) {
      for (const auto& target : vr.targets) {
        if (target.hotspot >= m) {
          report.add("redirect-target",
                     "origin " + std::to_string(origin) + " video " +
                         std::to_string(vr.video) + " targets hotspot " +
                         std::to_string(target.hotspot) + " of " +
                         std::to_string(m));
          continue;
        }
        if (target.count == 0) {
          report.add("redirect-target",
                     "origin " + std::to_string(origin) + " video " +
                         std::to_string(vr.video) +
                         " carries a zero-count redirect");
        }
        if (result.placements.size() == m &&
            !placed_at(result.placements, target.hotspot, vr.video)) {
          report.add("redirect-miss",
                     "origin " + std::to_string(origin) + " redirects video " +
                         std::to_string(vr.video) + " to hotspot " +
                         std::to_string(target.hotspot) +
                         " without placing it");
        }
        redirected += target.count;
      }
    }
  }
  if (redirected != result.total_redirected) {
    report.add("redirect-total",
               "targets sum to " + std::to_string(redirected) +
                   " but total_redirected is " +
                   std::to_string(result.total_redirected));
  }
}

void audit_slot_plan(const SlotPlan& plan, std::span<const Hotspot> hotspots,
                     std::span<const Request> requests,
                     std::span<const HotspotIndex> homes,
                     AuditReport& report) {
  audit_assignment(plan.assignment, requests.size(), hotspots.size(), report);
  audit_placements(plan.placements, hotspots, report);
  audit_capacity(plan.assignment, plan.placements, hotspots, requests, homes,
                 report);
}

}  // namespace ccdn
