// Schedule-side invariant audits: the per-slot guarantees of problem (U)
// that a finished SlotPlan / ReplicationResult must satisfy, plus the FNV
// digest that turns thread-determinism into a one-line cross-check.
//
// Two tiers of checks, because not every scheme promises the same:
//  - audit_assignment / audit_placements hold for EVERY scheme (the
//    simulator's admission contract): the assignment is total and in range,
//    placements are sorted, unique, and within cache capacity c_h.
//  - audit_capacity / audit_replication hold for schemes that plan under
//    the paper's constraints (RBCAer flat and virtual): a request moved
//    away from its home hotspot lands where its video is placed, inbound
//    redirections never push a hotspot past its service capacity s_h, and
//    replicas stay within the B_peak budget. Baselines (Nearest, Random)
//    over-assign by design and are audited at the first tier only.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/replication.h"
#include "core/scheme.h"
#include "model/types.h"
#include "verify/audit.h"

namespace ccdn {

/// Deterministic FNV-1a (64-bit) digest of a slot's decision pair: the
/// per-request assignment and the per-hotspot placements. Equal plans hash
/// equal on every platform and thread count, so comparing digests across
/// runs IS the determinism check.
[[nodiscard]] std::uint64_t plan_digest(
    std::span<const HotspotIndex> assignment,
    const std::vector<std::vector<VideoId>>& placements);

[[nodiscard]] inline std::uint64_t plan_digest(const SlotPlan& plan) {
  return plan_digest(plan.assignment, plan.placements);
}

/// Assignment totality: one entry per request ("assignment-size"), each
/// either kCdnServer or a valid hotspot index ("assignment-range").
void audit_assignment(std::span<const HotspotIndex> assignment,
                      std::size_t num_requests, std::size_t num_hotspots,
                      AuditReport& report);

/// Placement shape: one list per hotspot ("placement-count"), strictly
/// ascending video ids ("placement-order"), and at most c_h entries
/// ("cache-capacity").
void audit_placements(const std::vector<std::vector<VideoId>>& placements,
                      std::span<const Hotspot> hotspots, AuditReport& report);

/// Redirect feasibility and service capacity for plans that promise them:
///  - every request assigned away from home targets a hotspot that has its
///    video placed ("redirect-miss"),
///  - per hotspot j, inbound redirected requests fit in the service
///    capacity left after j's own servable home demand:
///    inbound(j) <= max(0, s_j - home_servable(j)) ("service-capacity").
/// `homes` is the per-request home hotspot (SlotDemand::request_home).
void audit_capacity(std::span<const HotspotIndex> assignment,
                    const std::vector<std::vector<VideoId>>& placements,
                    std::span<const Hotspot> hotspots,
                    std::span<const Request> requests,
                    std::span<const HotspotIndex> homes, AuditReport& report);

/// Total service-capacity invariant for schemes that place every request
/// directly (the LP rounding, which decides x_ij for home and non-home
/// targets alike — there is no privileged "home demand" admission can be
/// assumed to cover):
///  - per hotspot j, the TOTAL number of requests assigned to j fits in
///    s_j ("total-capacity"),
///  - every assigned request's video is placed at its target
///    ("assignment-miss").
/// Stricter than audit_capacity, which only bounds inbound redirects
/// against the residual after servable home demand and tolerates
/// over-assigned homes.
void audit_total_capacity(std::span<const HotspotIndex> assignment,
                          const std::vector<std::vector<VideoId>>& placements,
                          std::span<const Hotspot> hotspots,
                          std::span<const Request> requests,
                          AuditReport& report);

/// Procedure 1 output contracts:
///  - replicas == total placements and both within `replica_budget`
///    ("replica-count" / "replication-budget"),
///  - placements well-formed and within caches (see audit_placements),
///  - every redirect target is in range, carries a positive amount, and has
///    the video placed ("redirect-target" / "redirect-miss"),
///  - total_redirected equals the sum over all redirect targets
///    ("redirect-total").
void audit_replication(const ReplicationResult& result,
                       std::span<const Hotspot> hotspots,
                       std::size_t replica_budget, AuditReport& report);

/// Full kPlan audit of a finished RBCAer-family slot plan: assignment
/// totality, placement shape, and capacity feasibility in one call.
void audit_slot_plan(const SlotPlan& plan, std::span<const Hotspot> hotspots,
                     std::span<const Request> requests,
                     std::span<const HotspotIndex> homes, AuditReport& report);

}  // namespace ccdn
