#include "verify/flow_audit.h"

#include <string>
#include <vector>

namespace ccdn {

namespace {

// Matches the solver's float-noise tolerance (flow/mcmf.cc).
constexpr double kEps = 1e-9;

std::string node_str(NodeId v) { return std::to_string(v); }

}  // namespace

void audit_flow_conservation(const FlowNetwork& net, NodeId source,
                             NodeId sink, AuditReport& report) {
  const std::size_t n = net.num_nodes();
  if (source >= n || sink >= n || source == sink) {
    report.add("terminal-nodes",
               "source " + node_str(source) + " / sink " + node_str(sink) +
                   " invalid for " + std::to_string(n) + " nodes");
    return;
  }
  std::vector<std::int64_t> balance(n, 0);
  const auto stored = static_cast<EdgeId>(2 * net.num_edges());
  for (EdgeId e = 0; e < stored; e += 2) {
    const std::int64_t flow = net.flow(e);
    const auto& edge = net.edge(e);
    if (flow < 0) {
      report.add("edge-flow-negative",
                 "edge " + std::to_string(e) + " (" + node_str(edge.from) +
                     "->" + node_str(edge.to) + ") carries " +
                     std::to_string(flow));
    }
    if (flow > net.original_capacity(e)) {
      report.add("edge-over-capacity",
                 "edge " + std::to_string(e) + " (" + node_str(edge.from) +
                     "->" + node_str(edge.to) + ") carries " +
                     std::to_string(flow) + " > capacity " +
                     std::to_string(net.original_capacity(e)));
    }
    balance[edge.from] -= flow;
    balance[edge.to] += flow;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (v == source || v == sink) continue;
    if (balance[v] != 0) {
      report.add("flow-conservation",
                 "node " + node_str(v) + " has net imbalance " +
                     std::to_string(balance[v]));
    }
  }
  if (balance[source] > 0 || balance[sink] < 0 ||
      balance[source] != -balance[sink]) {
    report.add("terminal-imbalance",
               "source emits " + std::to_string(-balance[source]) +
                   ", sink absorbs " + std::to_string(balance[sink]));
  }
}

namespace {

// Visit every audited arc id once: raw storage order for kStore, adjacency
// order for kTraversable (each live arc sits in exactly one node's slice,
// so the adjacency walk neither duplicates nor misses a traversable arc).
template <typename Fn>
void for_each_audited_arc(const FlowNetwork& net, ArcWalk walk, Fn&& fn) {
  if (walk == ArcWalk::kStore) {
    const auto stored = static_cast<EdgeId>(2 * net.num_edges());
    for (EdgeId e = 0; e < stored; ++e) fn(e);
    return;
  }
  for (std::size_t n = 0; n < net.num_nodes(); ++n) {
    for (const EdgeId e : net.out_edges(static_cast<NodeId>(n))) fn(e);
  }
}

}  // namespace

void audit_reduced_costs(const FlowNetwork& net,
                         std::span<const double> potentials,
                         AuditReport& report, ArcWalk walk) {
  const bool zero_potentials = potentials.empty();
  if (!zero_potentials && potentials.size() < net.num_nodes()) {
    report.add("potentials-missing",
               std::to_string(potentials.size()) + " potentials for " +
                   std::to_string(net.num_nodes()) + " nodes");
    return;
  }
  for_each_audited_arc(net, walk, [&](EdgeId e) {
    const auto& edge = net.edge(e);
    if (edge.capacity <= 0) return;
    const double reduced =
        zero_potentials
            ? edge.cost
            : edge.cost + potentials[edge.from] - potentials[edge.to];
    if (reduced < -kEps) {
      report.add("negative-reduced-cost",
                 "arc " + std::to_string(e) + " (" + node_str(edge.from) +
                     "->" + node_str(edge.to) + ") prices at " +
                     std::to_string(reduced));
    }
  });
}

void audit_reduced_costs_int(const FlowNetwork& net,
                             std::span<const std::int64_t> potentials,
                             AuditReport& report, ArcWalk walk) {
  CCDN_REQUIRE(net.integer_costs(),
               "integer reduced-cost audit on an unquantized network");
  const bool zero_potentials = potentials.empty();
  if (!zero_potentials && potentials.size() < net.num_nodes()) {
    report.add("potentials-missing",
               std::to_string(potentials.size()) + " potentials for " +
                   std::to_string(net.num_nodes()) + " nodes");
    return;
  }
  for_each_audited_arc(net, walk, [&](EdgeId e) {
    if (net.residual(e) <= 0) return;
    const NodeId from = net.arc_from(e);
    const NodeId to = net.arc_to(e);
    const std::int64_t reduced =
        zero_potentials ? net.qcost(e)
                        : net.qcost(e) + potentials[from] - potentials[to];
    if (reduced < 0) {
      report.add("negative-reduced-cost",
                 "arc " + std::to_string(e) + " (" + node_str(from) + "->" +
                     node_str(to) + ") prices at " + std::to_string(reduced) +
                     " (quantized)");
    }
  });
}

void audit_epoch_residual(const FlowNetwork& net, AuditReport& report) {
  const std::size_t n = net.num_nodes();
  const auto stored = static_cast<EdgeId>(2 * net.num_edges());
  // Everywhere-seeded Bellman-Ford: with every node at 0 there is no
  // reachability question — only a negative cycle can keep a label falling
  // for n rounds.
  std::vector<double> pot(n, 0.0);
  bool changed = true;
  for (std::size_t round = 0; round < n && changed; ++round) {
    changed = false;
    for (EdgeId e = 0; e < stored; ++e) {
      const auto& edge = net.edge(e);
      if (edge.capacity <= 0) continue;
      const double candidate = pot[edge.from] + edge.cost;
      if (candidate + kEps < pot[edge.to]) {
        pot[edge.to] = candidate;
        changed = true;
      }
    }
  }
  if (changed) {
    report.add("negative-residual-cycle",
               "residual graph relaxation did not converge in " +
                   std::to_string(n) +
                   " rounds: the committed flow is not min-cost");
    return;
  }
  audit_reduced_costs(net, pot, report);
}

void audit_epoch_residual_int(const FlowNetwork& net, AuditReport& report) {
  CCDN_REQUIRE(net.integer_costs(),
               "integer epoch-residual audit on an unquantized network");
  const std::size_t n = net.num_nodes();
  const auto stored = static_cast<EdgeId>(2 * net.num_edges());
  // Everywhere-seeded Bellman-Ford over the quantized costs, with exact
  // comparisons — the domain the integer engine optimized in.
  std::vector<std::int64_t> pot(n, 0);
  bool changed = true;
  for (std::size_t round = 0; round < n && changed; ++round) {
    changed = false;
    for (EdgeId e = 0; e < stored; ++e) {
      if (net.residual(e) <= 0) continue;
      const std::int64_t candidate = pot[net.arc_from(e)] + net.qcost(e);
      if (candidate < pot[net.arc_to(e)]) {
        pot[net.arc_to(e)] = candidate;
        changed = true;
      }
    }
  }
  if (changed) {
    report.add("negative-residual-cycle",
               "quantized residual relaxation did not converge in " +
                   std::to_string(n) +
                   " rounds: the committed flow is not min-cost in the "
                   "fixed-point domain");
    return;
  }
  audit_reduced_costs_int(net, pot, report);
}

void audit_flow_entries(std::span<const FlowEntry> flows,
                        const HotspotPartition& partition,
                        std::span<const std::int64_t> initial_phi,
                        AuditReport& report) {
  const std::size_t m = initial_phi.size();
  // Role per hotspot: 0 = balanced, 1 = overloaded (sender), 2 =
  // under-utilized (receiver).
  std::vector<std::uint8_t> role(m, 0);
  for (const std::uint32_t i : partition.overloaded) {
    if (i < m) role[i] = 1;
  }
  for (const std::uint32_t j : partition.underutilized) {
    if (j < m) role[j] = 2;
  }
  std::vector<std::int64_t> outflow(m, 0);
  std::vector<std::int64_t> inflow(m, 0);
  for (const auto& f : flows) {
    if (f.from >= m || f.to >= m) {
      report.add("flow-endpoint-range",
                 "entry " + std::to_string(f.from) + "->" +
                     std::to_string(f.to) + " outside " + std::to_string(m) +
                     " hotspots");
      continue;
    }
    if (f.amount <= 0) {
      report.add("flow-entry-nonpositive",
                 "entry " + std::to_string(f.from) + "->" +
                     std::to_string(f.to) + " carries " +
                     std::to_string(f.amount));
      continue;
    }
    if (role[f.from] != 1 || role[f.to] != 2) {
      report.add("flow-direction",
                 "entry " + std::to_string(f.from) + "->" +
                     std::to_string(f.to) +
                     " does not run overloaded->under-utilized");
    }
    outflow[f.from] += f.amount;
    inflow[f.to] += f.amount;
  }
  for (std::size_t h = 0; h < m; ++h) {
    if (outflow[h] > initial_phi[h]) {
      report.add("flow-exceeds-slack",
                 "hotspot " + std::to_string(h) + " sends " +
                     std::to_string(outflow[h]) + " > phi " +
                     std::to_string(initial_phi[h]));
    }
    if (inflow[h] > initial_phi[h]) {
      report.add("flow-exceeds-slack",
                 "hotspot " + std::to_string(h) + " receives " +
                     std::to_string(inflow[h]) + " > phi " +
                     std::to_string(initial_phi[h]));
    }
  }
}

}  // namespace ccdn
