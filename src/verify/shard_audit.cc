#include "verify/shard_audit.h"

#include <string>

namespace ccdn {

void audit_shard_flows(std::span<const FlowEntry> flows,
                       std::span<const std::uint32_t> shard_of,
                       std::uint32_t shard, AuditReport& report) {
  for (const FlowEntry& f : flows) {
    if (f.amount <= 0) {
      report.add("shard-flow-nonpositive",
                 "flow " + std::to_string(f.from) + "->" +
                     std::to_string(f.to) + " amount " +
                     std::to_string(f.amount));
      continue;
    }
    if (f.from >= shard_of.size() || f.to >= shard_of.size()) {
      report.add("shard-endpoint-range",
                 "flow " + std::to_string(f.from) + "->" +
                     std::to_string(f.to) + " outside hotspot range");
      continue;
    }
    if (shard_of[f.from] != shard || shard_of[f.to] != shard) {
      report.add("shard-locality",
                 "shard " + std::to_string(shard) + " flow " +
                     std::to_string(f.from) + " (shard " +
                     std::to_string(shard_of[f.from]) + ") -> " +
                     std::to_string(f.to) + " (shard " +
                     std::to_string(shard_of[f.to]) + ")");
    }
  }
}

void audit_exchange_flows(std::span<const FlowEntry> flows,
                          std::span<const std::uint32_t> shard_of,
                          std::span<const std::uint8_t> boundary,
                          AuditReport& report) {
  for (const FlowEntry& f : flows) {
    if (f.amount <= 0) {
      report.add("exchange-flow-nonpositive",
                 "flow " + std::to_string(f.from) + "->" +
                     std::to_string(f.to) + " amount " +
                     std::to_string(f.amount));
      continue;
    }
    if (f.from >= shard_of.size() || f.to >= shard_of.size()) {
      report.add("exchange-endpoint-range",
                 "flow " + std::to_string(f.from) + "->" +
                     std::to_string(f.to) + " outside hotspot range");
      continue;
    }
    // The exchange round re-decides boundary *senders*: their arcs may
    // land in any shard (own included — a re-committed local move), so
    // only the sender side carries a structural obligation.
    if (boundary[f.from] == 0) {
      report.add("exchange-not-boundary",
                 "flow " + std::to_string(f.from) + "->" +
                     std::to_string(f.to) +
                     " sent from a non-boundary hotspot");
    }
  }
}

}  // namespace ccdn
