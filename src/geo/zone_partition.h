// Geo-aware shard partitioning for the zone-sharded scheduler.
//
// The trace generator emits spatially clustered demand zones, and the
// balancing graphs only ever connect hotspots within θ2 of each other — so
// a spatial partition of the hotspot set is also (approximately) a partition
// of the flow problem. partition_zones() cuts the hotspot cloud into
// `num_shards` contiguous, size-balanced cells by recursive coordinate
// bisection on the local tangent-plane projection; boundary_hotspots() marks
// the hotspots whose candidate edges could cross a shard cut (any other-shard
// hotspot within the candidate radius), which is exactly the set the
// cross-shard exchange round may still move load between.
//
// Both functions are pure and deterministic: they depend only on the point
// coordinates and the shard count, never on demand, iteration order of
// containers, or wall-clock — a fixed (points, num_shards) pair always
// yields the same assignment, which is what lets the golden-digest harness
// pin sharded plans (DESIGN.md §3.12).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geo/geo_point.h"
#include "geo/grid_index.h"

namespace ccdn {

/// A complete assignment of every point to exactly one shard.
struct ShardAssignment {
  std::size_t num_shards = 1;
  /// Shard id per point, parallel to the input span.
  std::vector<std::uint32_t> shard_of;
  /// Member point indices per shard, ascending. Every point appears in
  /// exactly one list (the partition property the tests assert).
  std::vector<std::vector<std::uint32_t>> members;
};

/// Recursive coordinate bisection: project the points onto the tangent
/// plane at points[0], then recursively split the index set on its
/// wider-extent axis, dividing the shard quota proportionally
/// (K → ⌊K/2⌋ + ⌈K/2⌉). Splits sort by (coordinate, index), so ties are
/// deterministic. Every shard is non-empty and sizes stay floor/ceil
/// balanced. Requires 1 <= num_shards <= points.size().
[[nodiscard]] ShardAssignment partition_zones(std::span<const GeoPoint> points,
                                              std::size_t num_shards);

/// Byte mask (1 = boundary), parallel to `points`: point i is a boundary
/// point iff some point of a *different* shard lies strictly within
/// `radius_km`. `index` must be a GridIndex over the same points in the
/// same order. With a single shard the mask is all zero.
[[nodiscard]] std::vector<std::uint8_t> boundary_hotspots(
    std::span<const GeoPoint> points, const ShardAssignment& assignment,
    double radius_km, const GridIndex& index);

/// O(n²) pair-scan oracle for boundary_hotspots (differential tests only).
[[nodiscard]] std::vector<std::uint8_t> boundary_hotspots_pairscan(
    std::span<const GeoPoint> points, const ShardAssignment& assignment,
    double radius_km);

}  // namespace ccdn
