#include "geo/geo_point.h"

#include <cmath>
#include <numbers>

namespace ccdn {

namespace {
constexpr double kDegToRad = std::numbers::pi / 180.0;
}

double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlon = (b.lon - a.lon) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(std::min(1.0, h)));
}

double equirect_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double mean_lat = (a.lat + b.lat) / 2.0 * kDegToRad;
  const double x = (b.lon - a.lon) * kDegToRad * std::cos(mean_lat);
  const double y = (b.lat - a.lat) * kDegToRad;
  return kEarthRadiusKm * std::sqrt(x * x + y * y);
}

double BoundingBox::width_km() const noexcept {
  const double mid_lat = (min.lat + max.lat) / 2.0;
  return equirect_km({mid_lat, min.lon}, {mid_lat, max.lon});
}

double BoundingBox::height_km() const noexcept {
  return equirect_km({min.lat, min.lon}, {max.lat, min.lon});
}

Projection::Projection(GeoPoint reference) noexcept
    : reference_(reference),
      km_per_deg_lon_(kEarthRadiusKm * kDegToRad *
                      std::cos(reference.lat * kDegToRad)),
      km_per_deg_lat_(kEarthRadiusKm * kDegToRad) {}

Projection::Xy Projection::to_xy(const GeoPoint& p) const noexcept {
  return {(p.lon - reference_.lon) * km_per_deg_lon_,
          (p.lat - reference_.lat) * km_per_deg_lat_};
}

GeoPoint Projection::to_geo(const Xy& xy) const noexcept {
  return {reference_.lat + xy.y_km / km_per_deg_lat_,
          reference_.lon + xy.x_km / km_per_deg_lon_};
}

}  // namespace ccdn
