// Geographic coordinates and city-scale distance.
//
// The paper assumes network latency between two devices is proportional to
// geo-distance (§II, citing RTT/geo-distance measurements), so distance in km
// is the latency unit throughout the library.
#pragma once

#include <compare>

namespace ccdn {

/// WGS-84 style latitude/longitude in degrees.
struct GeoPoint {
  double lat = 0.0;
  double lon = 0.0;

  friend auto operator<=>(const GeoPoint&, const GeoPoint&) = default;
};

inline constexpr double kEarthRadiusKm = 6371.0088;

/// Great-circle distance (haversine), in km.
[[nodiscard]] double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Equirectangular approximation, in km. Within ~0.1% of haversine at city
/// scale and several times cheaper; this is the default metric.
[[nodiscard]] double equirect_km(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Default distance used by the library (equirectangular).
[[nodiscard]] inline double distance_km(const GeoPoint& a,
                                        const GeoPoint& b) noexcept {
  return equirect_km(a, b);
}

/// Axis-aligned lat/lon rectangle.
struct BoundingBox {
  GeoPoint min;  // south-west corner
  GeoPoint max;  // north-east corner

  [[nodiscard]] bool contains(const GeoPoint& p) const noexcept {
    return p.lat >= min.lat && p.lat <= max.lat && p.lon >= min.lon &&
           p.lon <= max.lon;
  }

  [[nodiscard]] GeoPoint center() const noexcept {
    return {(min.lat + max.lat) / 2.0, (min.lon + max.lon) / 2.0};
  }

  /// East-west extent in km (measured at the central latitude).
  [[nodiscard]] double width_km() const noexcept;
  /// North-south extent in km.
  [[nodiscard]] double height_km() const noexcept;
};

/// Local tangent-plane projection: maps lat/lon to (x, y) km offsets from a
/// reference point, with x pointing east and y pointing north. Inverse maps
/// km offsets back to coordinates. Accurate at city scale.
class Projection {
 public:
  explicit Projection(GeoPoint reference) noexcept;

  [[nodiscard]] GeoPoint reference() const noexcept { return reference_; }

  struct Xy {
    double x_km = 0.0;
    double y_km = 0.0;
  };

  [[nodiscard]] Xy to_xy(const GeoPoint& p) const noexcept;
  [[nodiscard]] GeoPoint to_geo(const Xy& xy) const noexcept;

 private:
  GeoPoint reference_;
  double km_per_deg_lon_;
  double km_per_deg_lat_;
};

}  // namespace ccdn
