#include "geo/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace ccdn {

GridIndex::GridIndex(std::vector<GeoPoint> points, double cell_km)
    : points_(std::move(points)),
      projection_(GeoPoint{}),
      cell_km_(cell_km) {
  CCDN_REQUIRE(!points_.empty(), "empty point set");
  CCDN_REQUIRE(cell_km > 0.0, "non-positive cell size");

  GeoPoint lo = points_.front();
  GeoPoint hi = points_.front();
  for (const auto& p : points_) {
    lo.lat = std::min(lo.lat, p.lat);
    lo.lon = std::min(lo.lon, p.lon);
    hi.lat = std::max(hi.lat, p.lat);
    hi.lon = std::max(hi.lon, p.lon);
  }
  projection_ = Projection(BoundingBox{lo, hi}.center());

  projected_.reserve(points_.size());
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();
  for (const auto& p : points_) {
    const auto xy = projection_.to_xy(p);
    projected_.push_back(xy);
    min_x = std::min(min_x, xy.x_km);
    min_y = std::min(min_y, xy.y_km);
    max_x = std::max(max_x, xy.x_km);
    max_y = std::max(max_y, xy.y_km);
  }
  min_x_ = min_x;
  min_y_ = min_y;
  cols_ = std::max<std::int32_t>(
      1, static_cast<std::int32_t>(std::floor((max_x - min_x) / cell_km_)) + 1);
  rows_ = std::max<std::int32_t>(
      1, static_cast<std::int32_t>(std::floor((max_y - min_y) / cell_km_)) + 1);

  // Counting sort of point ids into cells.
  const std::size_t cell_count =
      static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
  std::vector<std::uint32_t> counts(cell_count + 1, 0);
  std::vector<std::size_t> slots(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    slots[i] = cell_slot(cell_of(projected_[i]));
    ++counts[slots[i] + 1];
  }
  for (std::size_t c = 1; c < counts.size(); ++c) counts[c] += counts[c - 1];
  bucket_offsets_ = counts;
  bucket_ids_.resize(points_.size());
  std::vector<std::uint32_t> cursor(counts.begin(), counts.end() - 1);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    bucket_ids_[cursor[slots[i]]++] = static_cast<std::uint32_t>(i);
  }
}

GridIndex::Cell GridIndex::cell_of(const Projection::Xy& xy) const noexcept {
  auto clamp = [](std::int32_t v, std::int32_t hi) {
    return std::max<std::int32_t>(0, std::min(v, hi - 1));
  };
  return {clamp(static_cast<std::int32_t>(
                    std::floor((xy.x_km - min_x_) / cell_km_)),
                cols_),
          clamp(static_cast<std::int32_t>(
                    std::floor((xy.y_km - min_y_) / cell_km_)),
                rows_)};
}

std::size_t GridIndex::cell_slot(Cell c) const noexcept {
  return static_cast<std::size_t>(c.row) * static_cast<std::size_t>(cols_) +
         static_cast<std::size_t>(c.col);
}

std::size_t GridIndex::nearest(const GeoPoint& query) const {
  const auto q = projection_.to_xy(query);
  const Cell center = cell_of(q);
  std::size_t best = 0;
  double best_dist2 = std::numeric_limits<double>::infinity();

  const auto scan_ring = [&](std::int32_t ring) {
    for (std::int32_t row = center.row - ring; row <= center.row + ring;
         ++row) {
      if (row < 0 || row >= rows_) continue;
      for (std::int32_t col = center.col - ring; col <= center.col + ring;
           ++col) {
        if (col < 0 || col >= cols_) continue;
        // Only the ring boundary; interior was scanned at smaller rings.
        if (ring > 0 && row != center.row - ring && row != center.row + ring &&
            col != center.col - ring && col != center.col + ring) {
          continue;
        }
        const std::size_t slot = cell_slot({col, row});
        for (std::uint32_t k = bucket_offsets_[slot];
             k < bucket_offsets_[slot + 1]; ++k) {
          const std::uint32_t id = bucket_ids_[k];
          const double dx = projected_[id].x_km - q.x_km;
          const double dy = projected_[id].y_km - q.y_km;
          const double d2 = dx * dx + dy * dy;
          if (d2 < best_dist2 ||
              (d2 == best_dist2 && id < best)) {
            best_dist2 = d2;
            best = id;
          }
        }
      }
    }
  };

  const std::int32_t max_ring = std::max(cols_, rows_);
  for (std::int32_t ring = 0; ring <= max_ring; ++ring) {
    scan_ring(ring);
    if (best_dist2 < std::numeric_limits<double>::infinity()) {
      // A candidate found at ring r is only guaranteed optimal once we have
      // scanned every cell that could contain a closer point: cells within
      // ceil(sqrt(best)/cell) rings.
      const double best_dist = std::sqrt(best_dist2);
      const auto safe_ring =
          static_cast<std::int32_t>(std::ceil(best_dist / cell_km_));
      if (ring >= safe_ring) break;
    }
  }
  return best;
}

std::vector<std::size_t> GridIndex::within_radius(const GeoPoint& query,
                                                  double radius_km) const {
  std::vector<std::size_t> out;
  within_radius(query, radius_km, out);
  return out;
}

void GridIndex::within_radius(const GeoPoint& query, double radius_km,
                              std::vector<std::size_t>& out) const {
  CCDN_REQUIRE(radius_km >= 0.0, "negative radius");
  out.clear();
  const auto q = projection_.to_xy(query);
  const Cell center = cell_of(q);
  const auto reach = static_cast<std::int32_t>(std::ceil(radius_km / cell_km_));
  const double radius2 = radius_km * radius_km;
  for (std::int32_t row = center.row - reach; row <= center.row + reach;
       ++row) {
    if (row < 0 || row >= rows_) continue;
    for (std::int32_t col = center.col - reach; col <= center.col + reach;
         ++col) {
      if (col < 0 || col >= cols_) continue;
      const std::size_t slot = cell_slot({col, row});
      for (std::uint32_t k = bucket_offsets_[slot];
           k < bucket_offsets_[slot + 1]; ++k) {
        const std::uint32_t id = bucket_ids_[k];
        const double dx = projected_[id].x_km - q.x_km;
        const double dy = projected_[id].y_km - q.y_km;
        if (dx * dx + dy * dy <= radius2) out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
}

GridIndex::Subset::Subset(const GridIndex& parent) : parent_(&parent) {}

void GridIndex::Subset::assign(std::span<const std::uint32_t> ids) {
  const std::size_t cell_count = static_cast<std::size_t>(parent_->cols_) *
                                 static_cast<std::size_t>(parent_->rows_);
  offsets_.assign(cell_count + 1, 0);
  slots_.resize(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::uint32_t id = ids[i];
    CCDN_REQUIRE(id < parent_->points_.size(), "subset id out of range");
    slots_[i] = static_cast<std::uint32_t>(
        parent_->cell_slot(parent_->cell_of(parent_->projected_[id])));
    ++offsets_[slots_[i] + 1];
  }
  for (std::size_t c = 1; c < offsets_.size(); ++c) {
    offsets_[c] += offsets_[c - 1];
  }
  ids_.resize(ids.size());
  // Counting sort keeps insertion order per cell; within_radius sorts the
  // collected hits anyway, so subset order does not matter here.
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids_[cursor[slots_[i]]++] = ids[i];
  }
}

void GridIndex::Subset::within_radius(const GeoPoint& query, double radius_km,
                                      std::vector<std::size_t>& out) const {
  CCDN_REQUIRE(radius_km >= 0.0, "negative radius");
  out.clear();
  const GridIndex& g = *parent_;
  const auto q = g.projection_.to_xy(query);
  const Cell center = g.cell_of(q);
  const auto reach =
      static_cast<std::int32_t>(std::ceil(radius_km / g.cell_km_));
  const double radius2 = radius_km * radius_km;
  for (std::int32_t row = center.row - reach; row <= center.row + reach;
       ++row) {
    if (row < 0 || row >= g.rows_) continue;
    for (std::int32_t col = center.col - reach; col <= center.col + reach;
         ++col) {
      if (col < 0 || col >= g.cols_) continue;
      const std::size_t slot = g.cell_slot({col, row});
      for (std::uint32_t k = offsets_[slot]; k < offsets_[slot + 1]; ++k) {
        const std::uint32_t id = ids_[k];
        const double dx = g.projected_[id].x_km - q.x_km;
        const double dy = g.projected_[id].y_km - q.y_km;
        if (dx * dx + dy * dy <= radius2) out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
}

std::vector<std::size_t> GridIndex::k_nearest(const GeoPoint& query,
                                              std::size_t k) const {
  k = std::min(k, points_.size());
  if (k == 0) return {};
  // Expand the radius until at least k candidates are inside, then sort.
  double radius = cell_km_;
  std::vector<std::size_t> candidates;
  while (true) {
    candidates = within_radius(query, radius);
    if (candidates.size() >= k) break;
    const double diag =
        cell_km_ * (static_cast<double>(cols_) + static_cast<double>(rows_));
    if (radius > diag) {  // whole grid covered
      break;
    }
    radius *= 2.0;
  }
  const auto q = projection_.to_xy(query);
  std::sort(candidates.begin(), candidates.end(),
            [&](std::size_t a, std::size_t b) {
              const double dax = projected_[a].x_km - q.x_km;
              const double day = projected_[a].y_km - q.y_km;
              const double dbx = projected_[b].x_km - q.x_km;
              const double dby = projected_[b].y_km - q.y_km;
              const double da = dax * dax + day * day;
              const double db = dbx * dbx + dby * dby;
              if (da != db) return da < db;
              return a < b;
            });
  if (candidates.size() > k) candidates.resize(k);
  return candidates;
}

}  // namespace ccdn
