// Uniform spatial grid over a set of geo points.
//
// Supports nearest-neighbour and radius queries; used to (a) aggregate every
// user request at its nearest hotspot and (b) enumerate candidate hotspots
// within the Random-routing / θ radius, without O(N·M) scans.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/geo_point.h"

namespace ccdn {

class GridIndex {
 public:
  /// Index over `points` (copied). `cell_km` controls the grid resolution;
  /// a value near the typical query radius works well. Requires a non-empty
  /// point set and cell_km > 0.
  GridIndex(std::vector<GeoPoint> points, double cell_km);

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] const GeoPoint& point(std::size_t i) const {
    return points_.at(i);
  }

  /// Index of the nearest point to the query (ties broken by lowest index).
  [[nodiscard]] std::size_t nearest(const GeoPoint& query) const;

  /// Indices of all points with distance <= radius_km, ascending by index.
  [[nodiscard]] std::vector<std::size_t> within_radius(const GeoPoint& query,
                                                       double radius_km) const;

  /// Indices of the k nearest points, ascending by distance (k clamped to
  /// size()).
  [[nodiscard]] std::vector<std::size_t> k_nearest(const GeoPoint& query,
                                                   std::size_t k) const;

 private:
  struct Cell {
    std::int32_t col = 0;
    std::int32_t row = 0;
  };

  [[nodiscard]] Cell cell_of(const Projection::Xy& xy) const noexcept;
  [[nodiscard]] std::size_t cell_slot(Cell c) const noexcept;

  std::vector<GeoPoint> points_;
  std::vector<Projection::Xy> projected_;
  Projection projection_;
  double cell_km_;
  std::int32_t cols_ = 0;
  std::int32_t rows_ = 0;
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  // CSR-style buckets: ids of points per cell.
  std::vector<std::uint32_t> bucket_offsets_;
  std::vector<std::uint32_t> bucket_ids_;
};

}  // namespace ccdn
