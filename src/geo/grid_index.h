// Uniform spatial grid over a set of geo points.
//
// Supports nearest-neighbour and radius queries; used to (a) aggregate every
// user request at its nearest hotspot and (b) enumerate candidate hotspots
// within the Random-routing / θ radius, without O(N·M) scans.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geo/geo_point.h"

namespace ccdn {

class GridIndex {
 public:
  /// Index over `points` (copied). `cell_km` controls the grid resolution;
  /// a value near the typical query radius works well. Requires a non-empty
  /// point set and cell_km > 0.
  GridIndex(std::vector<GeoPoint> points, double cell_km);

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] const GeoPoint& point(std::size_t i) const {
    return points_.at(i);
  }

  /// Index of the nearest point to the query (ties broken by lowest index).
  [[nodiscard]] std::size_t nearest(const GeoPoint& query) const;

  /// Indices of all points with distance <= radius_km, ascending by index.
  [[nodiscard]] std::vector<std::size_t> within_radius(const GeoPoint& query,
                                                       double radius_km) const;

  /// Same query into a caller-owned buffer (cleared first), so a query loop
  /// performs no allocations once the buffer has grown to steady state.
  void within_radius(const GeoPoint& query, double radius_km,
                     std::vector<std::size_t>& out) const;

  /// A radius-query view restricted to a subset of the indexed points.
  ///
  /// Shares the parent's projection and cell geometry, so a query returns
  /// exactly the members of the subset that the parent's within_radius()
  /// would return — same planar pre-filter, same ascending-id order —
  /// without scanning points outside the subset. Built for the θ-sweep
  /// candidate scan, where only the under-utilized hotspots can receive and
  /// most points near a sender are not receivers.
  ///
  /// The view borrows the parent index, which must outlive it. assign() may
  /// be called repeatedly to re-target the same (buffer-reusing) view.
  class Subset {
   public:
    explicit Subset(const GridIndex& parent);

    /// Replace the subset with `ids` (parent point indices, any order).
    void assign(std::span<const std::uint32_t> ids);

    /// Parent indices of subset members with projected distance <=
    /// radius_km, ascending, into a caller-owned buffer (cleared first).
    void within_radius(const GeoPoint& query, double radius_km,
                       std::vector<std::size_t>& out) const;

   private:
    const GridIndex* parent_;
    // CSR buckets over the parent's cells, holding subset members only.
    std::vector<std::uint32_t> offsets_;
    std::vector<std::uint32_t> ids_;
    std::vector<std::uint32_t> slots_;  // assign() scratch
  };

  /// Indices of the k nearest points, ascending by distance (k clamped to
  /// size()).
  [[nodiscard]] std::vector<std::size_t> k_nearest(const GeoPoint& query,
                                                   std::size_t k) const;

 private:
  struct Cell {
    std::int32_t col = 0;
    std::int32_t row = 0;
  };

  [[nodiscard]] Cell cell_of(const Projection::Xy& xy) const noexcept;
  [[nodiscard]] std::size_t cell_slot(Cell c) const noexcept;

  std::vector<GeoPoint> points_;
  std::vector<Projection::Xy> projected_;
  Projection projection_;
  double cell_km_;
  std::int32_t cols_ = 0;
  std::int32_t rows_ = 0;
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  // CSR-style buckets: ids of points per cell.
  std::vector<std::uint32_t> bucket_offsets_;
  std::vector<std::uint32_t> bucket_ids_;
};

}  // namespace ccdn
