#include "geo/zone_partition.h"

#include <algorithm>

#include "util/error.h"

namespace ccdn {

namespace {

struct BisectState {
  std::span<const Projection::Xy> xy;
  std::vector<std::uint32_t>& shard_of;
  std::uint32_t next_shard = 0;
};

/// Assign `num_shards` shard ids to the points in `indices` (mutated in
/// place as sorting scratch), splitting on the wider-extent axis.
void bisect(BisectState& state, std::span<std::uint32_t> indices,
            std::size_t num_shards) {
  if (num_shards == 1) {
    const std::uint32_t shard = state.next_shard++;
    for (const std::uint32_t i : indices) state.shard_of[i] = shard;
    return;
  }
  double min_x = state.xy[indices.front()].x_km;
  double max_x = min_x;
  double min_y = state.xy[indices.front()].y_km;
  double max_y = min_y;
  for (const std::uint32_t i : indices) {
    min_x = std::min(min_x, state.xy[i].x_km);
    max_x = std::max(max_x, state.xy[i].x_km);
    min_y = std::min(min_y, state.xy[i].y_km);
    max_y = std::max(max_y, state.xy[i].y_km);
  }
  const bool split_x = (max_x - min_x) >= (max_y - min_y);
  std::sort(indices.begin(), indices.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const double ca = split_x ? state.xy[a].x_km : state.xy[a].y_km;
              const double cb = split_x ? state.xy[b].x_km : state.xy[b].y_km;
              if (ca != cb) return ca < cb;
              return a < b;  // deterministic tie-break
            });
  const std::size_t left_shards = num_shards / 2;
  const std::size_t right_shards = num_shards - left_shards;
  // Proportional quota, floored: keeps every leaf within one point of its
  // ideal n/K share (see the balance property test).
  const std::size_t left_count = indices.size() * left_shards / num_shards;
  bisect(state, indices.subspan(0, left_count), left_shards);
  bisect(state, indices.subspan(left_count), right_shards);
}

}  // namespace

ShardAssignment partition_zones(std::span<const GeoPoint> points,
                                std::size_t num_shards) {
  CCDN_REQUIRE(num_shards >= 1, "partition_zones: zero shards");
  CCDN_REQUIRE(num_shards <= points.size(),
               "partition_zones: more shards than points");
  ShardAssignment out;
  out.num_shards = num_shards;
  out.shard_of.assign(points.size(), 0);
  out.members.resize(num_shards);
  const Projection projection(points.front());
  std::vector<Projection::Xy> xy(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    xy[i] = projection.to_xy(points[i]);
  }
  std::vector<std::uint32_t> indices(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    indices[i] = static_cast<std::uint32_t>(i);
  }
  BisectState state{xy, out.shard_of, 0};
  bisect(state, std::span<std::uint32_t>(indices), num_shards);
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    out.members[out.shard_of[i]].push_back(i);
  }
  // members lists come out ascending because i runs ascending here; the
  // invariant matters — shard sub-instances enumerate hotspots in member
  // order, and the golden digests pin the resulting plans.
  return out;
}

std::vector<std::uint8_t> boundary_hotspots(std::span<const GeoPoint> points,
                                            const ShardAssignment& assignment,
                                            double radius_km,
                                            const GridIndex& index) {
  CCDN_REQUIRE(assignment.shard_of.size() == points.size(),
               "boundary_hotspots: assignment/point count mismatch");
  std::vector<std::uint8_t> boundary(points.size(), 0);
  if (assignment.num_shards <= 1) return boundary;
  // The grid filters on its planar projection; query slightly wide and keep
  // the exact d < radius_km cut, the same contract as candidate_edges — a
  // boundary hotspot is precisely one that can hold a cross-shard candidate
  // edge.
  const double query_radius = radius_km * 1.001 + 1e-6;
  std::vector<std::size_t> neighbours;
  for (std::size_t i = 0; i < points.size(); ++i) {
    index.within_radius(points[i], query_radius, neighbours);
    for (const std::size_t j : neighbours) {
      if (assignment.shard_of[j] == assignment.shard_of[i]) continue;
      if (distance_km(points[i], points[j]) < radius_km) {
        boundary[i] = 1;
        break;
      }
    }
  }
  return boundary;
}

std::vector<std::uint8_t> boundary_hotspots_pairscan(
    std::span<const GeoPoint> points, const ShardAssignment& assignment,
    double radius_km) {
  CCDN_REQUIRE(assignment.shard_of.size() == points.size(),
               "boundary_hotspots: assignment/point count mismatch");
  std::vector<std::uint8_t> boundary(points.size(), 0);
  if (assignment.num_shards <= 1) return boundary;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (assignment.shard_of[j] == assignment.shard_of[i]) continue;
      if (distance_km(points[i], points[j]) < radius_km) {
        boundary[i] = 1;
        break;
      }
    }
  }
  return boundary;
}

}  // namespace ccdn
