#include "util/csv.h"

#include <istream>
#include <ostream>

#include "util/error.h"
#include "util/strings.h"

namespace ccdn {

CsvWriter::CsvWriter(std::ostream& out, char delimiter)
    : out_(out), delimiter_(delimiter) {}

std::string CsvWriter::to_cell(double v) {
  // round-trippable representation without locale surprises
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  return buffer;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << delimiter_;
    const std::string& field = fields[i];
    const bool needs_quotes =
        field.find(delimiter_) != std::string::npos ||
        field.find('"') != std::string::npos ||
        field.find('\n') != std::string::npos ||
        field.find('\r') != std::string::npos;
    if (!needs_quotes) {
      out_ << field;
      continue;
    }
    out_ << '"';
    for (const char c : field) {
      if (c == '"') out_ << '"';
      out_ << c;
    }
    out_ << '"';
  }
  out_ << '\n';
  ++rows_;
}

CsvReader::CsvReader(std::istream& in, char delimiter)
    : in_(in), delimiter_(delimiter) {}

bool CsvReader::read_row(std::vector<std::string>& fields) {
  fields.clear();
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  char c = 0;
  while (in_.get(c)) {
    saw_any = true;
    if (in_quotes) {
      if (c == '"') {
        if (in_.peek() == '"') {
          in_.get(c);
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
    } else if (c == delimiter_) {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      break;
    } else if (c == '\r') {
      // swallow; handles CRLF
    } else {
      field += c;
    }
  }
  if (in_quotes) throw ParseError("unterminated quoted CSV field");
  if (!saw_any) return false;
  fields.push_back(std::move(field));
  ++rows_;
  return true;
}

}  // namespace ccdn
