// Peak-RSS readings from getrusage(), normalized to MiB.
//
// POSIX leaves ru_maxrss's unit to the platform: Linux reports KiB, macOS
// (and other BSDs following the historical convention) reports bytes.
// Every call site that divides by 1024 unconditionally is therefore 1024x
// off on one of the two — this header is the single shared conversion.
#pragma once

#include <sys/resource.h>

namespace ccdn {

/// Convert a raw ru_maxrss reading to MiB.
inline double maxrss_to_mb(long ru_maxrss) {
#ifdef __APPLE__
  return static_cast<double>(ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(ru_maxrss) / 1024.0;  // KiB (Linux)
#endif
}

/// Peak RSS in MiB from an already-collected rusage (e.g. wait4's child
/// accounting).
inline double peak_rss_mb(const rusage& usage) {
  return maxrss_to_mb(usage.ru_maxrss);
}

/// Peak RSS of the calling process in MiB.
inline double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return peak_rss_mb(usage);
}

}  // namespace ccdn
