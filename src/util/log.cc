#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace ccdn {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const auto now = std::chrono::system_clock::now();
  const auto since_epoch =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count();
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%lld.%03lld %s] %s\n",
               static_cast<long long>(since_epoch / 1000),
               static_cast<long long>(since_epoch % 1000), level_name(level),
               message.c_str());
}

}  // namespace ccdn
