#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ccdn {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
Mutex g_mutex;
// The active sink; nullptr means stderr. Guarded so a test swapping the
// sink cannot race an in-flight log_line's fprintf.
std::FILE* g_sink CCDN_GUARDED_BY(g_mutex) = nullptr;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

std::FILE* set_log_sink(std::FILE* sink) {
  const MutexLock lock(g_mutex);
  std::FILE* previous = g_sink;
  g_sink = sink;
  return previous;
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  // ccdn-lint: allow(nondet-clock) -- timestamps are display-only log
  // prefixes; they never feed a scheduling decision
  const auto now = std::chrono::system_clock::now();
  const auto since_epoch =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count();
  const MutexLock lock(g_mutex);
  std::FILE* out = g_sink != nullptr ? g_sink : stderr;
  std::fprintf(out, "[%lld.%03lld %s] %s\n",
               static_cast<long long>(since_epoch / 1000),
               static_cast<long long>(since_epoch % 1000), level_name(level),
               message.c_str());
}

}  // namespace ccdn
