// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ccdn {

/// Split on a delimiter; keeps empty fields ("a,,b" -> {"a","","b"}).
[[nodiscard]] std::vector<std::string> split(std::string_view text,
                                             char delimiter);

/// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Join items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view separator);

/// True if text begins with prefix.
[[nodiscard]] bool starts_with(std::string_view text,
                               std::string_view prefix) noexcept;

/// Parse a decimal integer; throws ParseError on malformed input.
[[nodiscard]] std::int64_t parse_int(std::string_view text);

/// Parse a floating-point number; throws ParseError on malformed input.
[[nodiscard]] double parse_double(std::string_view text);

/// Format a double with fixed precision (no trailing-zero trimming).
[[nodiscard]] std::string format_fixed(double value, int digits);

}  // namespace ccdn
