// Small fixed-size thread pool for the parallel slot-scheduling pipeline.
//
// Tasks are type-erased closures executed FIFO by a fixed set of worker
// threads; `submit` returns a std::future for the task's result. The pool
// is intentionally minimal (no work stealing, no priorities): the simulator
// fans out whole timeslots, which are coarse enough that a single mutex-
// guarded queue is nowhere near the bottleneck.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ccdn {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Number of threads to use when the caller asks for "all of them":
  /// hardware concurrency, or 1 when the runtime cannot report it.
  [[nodiscard]] static std::size_t default_threads() noexcept;

  /// Enqueue a callable; returns a future for its result. Exceptions thrown
  /// by the task are captured in the future.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

 private:
  void enqueue(std::function<void()> task) CCDN_EXCLUDES(mutex_);
  void worker_loop() CCDN_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_ CCDN_GUARDED_BY(mutex_);
  Mutex mutex_;
  CondVar ready_;
  bool stop_ CCDN_GUARDED_BY(mutex_) = false;
};

}  // namespace ccdn
