#include "util/thread_pool.h"

#include <algorithm>

namespace ccdn {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
  }
  ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::size_t ThreadPool::default_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  ready_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      // Explicit wait loop (not the predicate overload) so the guarded
      // reads of stop_/queue_ stay visible to the thread-safety analysis.
      while (!stop_ && queue_.empty()) ready_.wait(mutex_);
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace ccdn
