#include "util/cpu_features.h"

#include "util/error.h"

namespace ccdn {

bool cpu_has_avx2() noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  // __builtin_cpu_supports caches the cpuid result in libgcc/compiler-rt;
  // the local static makes the memoization explicit and keeps the call
  // branch-free after first use.
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
#else
  return false;
#endif
}

const char* simd_mode_name(SimdMode mode) noexcept {
  switch (mode) {
    case SimdMode::kAuto:
      return "auto";
    case SimdMode::kScalar:
      return "scalar";
    case SimdMode::kAvx2:
      return "avx2";
  }
  return "auto";
}

SimdMode parse_simd_mode(const std::string& text) {
  if (text == "auto") return SimdMode::kAuto;
  if (text == "scalar") return SimdMode::kScalar;
  if (text == "avx2") return SimdMode::kAvx2;
  CCDN_REQUIRE(false, "--simd must be auto|scalar|avx2, got '" + text + "'");
  return SimdMode::kAuto;  // unreachable
}

}  // namespace ccdn
