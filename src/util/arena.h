// Bump arena + std allocator adapter for per-lane solver scratch.
//
// The θ sweep's per-slot scratch — MCMF search labels, Gc grouping buffers,
// the candidate list — lives in a couple dozen vectors per scheme clone.
// Each clone-ring lane keeps one BumpArena and backs those vectors with
// ArenaAllocator: growth carves from a few large retained blocks instead of
// individual heap allocations, consolidating a lane's working set into
// contiguous memory, and once every buffer has reached steady-state size a
// slot performs no arena (and no heap) allocation at all. The counters make
// that claim testable: tests/util/arena_test.cc and the theta-sweep
// no-allocation test assert allocations() stops moving after warm-up.
//
// The arena never frees individual allocations (deallocate is a no-op), so
// a growing vector strands its old buffer until reset(). That waste is
// bounded by geometric growth and is the price of O(1) allocation; callers
// that churn unboundedly should not use an arena. reset() rewinds every
// block for reuse but must only run when no arena-backed container is
// alive — the long-lived solver scratch never resets mid-life.
//
// A default-constructed ArenaAllocator (null arena) falls back to the
// global heap, so arena-backed types stay usable in one-shot contexts
// (MinCostMaxFlow::solve, cold-path GcScratch) without a second type.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "util/error.h"

namespace ccdn {

class BumpArena {
 public:
  explicit BumpArena(std::size_t first_block_bytes = 1u << 16)
      : first_block_bytes_(first_block_bytes) {
    CCDN_REQUIRE(first_block_bytes > 0, "arena block size must be positive");
  }

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align) {
    CCDN_ASSERT(align > 0 && (align & (align - 1)) == 0,
                "alignment must be a power of two");
    ++allocations_;
    bytes_requested_ += bytes;
    // First-fit over the retained blocks from the active one forward; the
    // common case (steady-state reuse after reset) hits the first block.
    for (std::size_t b = active_; b < blocks_.size(); ++b) {
      if (void* p = try_bump(blocks_[b], bytes, align)) {
        active_ = b;
        return p;
      }
    }
    Block fresh;
    fresh.size = std::max(bytes + align, grow_hint());
    fresh.data = std::make_unique<std::byte[]>(fresh.size);
    blocks_.push_back(std::move(fresh));
    ++upstream_blocks_;
    active_ = blocks_.size() - 1;
    void* p = try_bump(blocks_.back(), bytes, align);
    CCDN_ENSURE(p != nullptr, "fresh arena block too small for request");
    return p;
  }

  /// No-op: individual frees are not tracked. Memory returns on reset().
  void deallocate(void* /*p*/, std::size_t /*bytes*/) noexcept {}

  /// Rewind every block for reuse. All memory handed out so far becomes
  /// invalid — no arena-backed container may be alive across a reset.
  void reset() noexcept {
    for (Block& block : blocks_) block.used = 0;
    active_ = 0;
  }

  /// Total allocate() calls (bumps), lifetime. A steady-state slot that
  /// allocates nothing leaves this unchanged — the no-allocation tests
  /// assert exactly that.
  [[nodiscard]] std::size_t allocations() const noexcept {
    return allocations_;
  }
  /// Blocks obtained from the upstream heap, lifetime (never shrinks).
  [[nodiscard]] std::size_t upstream_blocks() const noexcept {
    return upstream_blocks_;
  }
  [[nodiscard]] std::size_t bytes_requested() const noexcept {
    return bytes_requested_;
  }
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    std::size_t total = 0;
    for (const Block& block : blocks_) total += block.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] static void* try_bump(Block& block, std::size_t bytes,
                                      std::size_t align) noexcept {
    const auto base = reinterpret_cast<std::uintptr_t>(block.data.get());
    const std::uintptr_t cursor = base + block.used;
    const std::uintptr_t aligned = (cursor + align - 1) & ~(align - 1);
    const std::uintptr_t end = base + block.size;
    if (aligned + bytes > end) return nullptr;
    block.used = (aligned + bytes) - base;
    return reinterpret_cast<void*>(aligned);
  }

  [[nodiscard]] std::size_t grow_hint() const noexcept {
    return blocks_.empty() ? first_block_bytes_ : 2 * blocks_.back().size;
  }

  std::size_t first_block_bytes_;
  std::vector<Block> blocks_;
  std::size_t active_ = 0;
  std::size_t allocations_ = 0;
  std::size_t upstream_blocks_ = 0;
  std::size_t bytes_requested_ = 0;
};

namespace detail {
/// Lifetime count of ArenaAllocator heap-fallback allocations (allocators
/// constructed without an arena). Atomic because scheme clones allocate on
/// pool threads; used only by tests asserting the fallback path.
inline std::atomic<std::size_t> arena_heap_fallbacks{0};
}  // namespace detail

/// C++17 allocator over a BumpArena; null arena falls back to the heap.
/// Propagates on copy/move/swap so container moves carry their arena.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(BumpArena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
    }
    detail::arena_heap_fallbacks.fetch_add(1, std::memory_order_relaxed);
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (arena_ != nullptr) {
      arena_->deallocate(p, n * sizeof(T));
      return;
    }
    ::operator delete(p);
  }

  [[nodiscard]] BumpArena* arena() const noexcept { return arena_; }

  template <typename U>
  [[nodiscard]] bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }

 private:
  BumpArena* arena_ = nullptr;
};

/// Vector whose backing storage comes from a BumpArena (or the heap when
/// constructed with a null/default allocator).
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace ccdn
