// Stable LSD radix sort of (key, value) records by 64-bit key.
//
// Built for the θ-sweep's once-per-slot candidate ordering: tens of
// thousands of (distance, index) records where a comparison sort's
// branch-miss cost dominates. Four 16-bit counting passes, all histograms
// filled in a single read of the data; passes whose digit is constant
// across every record are skipped, so keys confined to a narrow range (all
// city-scale distances share sign and high exponent bits) sort in two or
// three scatters.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace ccdn {

struct KeyedIndex {
  std::uint64_t key = 0;
  std::uint32_t value = 0;
};

/// Total-order key for a non-negative finite double: the raw bit pattern of
/// an IEEE-754 double is monotone in the value on [0, +inf].
[[nodiscard]] inline std::uint64_t radix_key(double non_negative) noexcept {
  return std::bit_cast<std::uint64_t>(non_negative);
}

/// Sorts `items` by key ascending, stable (equal keys keep their relative
/// order). `swap` and `hist` are caller-owned scratch so a sort loop
/// performs no allocations once they reach steady-state size. Generic over
/// the vectors' allocators so arena-backed callers (util/arena.h) keep
/// their scratch inside the lane arena; `items` and `swap` must use the
/// same allocator type (they exchange buffers).
template <typename Alloc, typename HistAlloc>
inline void radix_sort_keyed(std::vector<KeyedIndex, Alloc>& items,
                             std::vector<KeyedIndex, Alloc>& swap,
                             std::vector<std::uint32_t, HistAlloc>& hist) {
  constexpr int kDigitBits = 16;
  constexpr int kPasses = 64 / kDigitBits;
  constexpr std::size_t kBuckets = std::size_t{1} << kDigitBits;
  const std::size_t n = items.size();
  if (n < 2) return;

  hist.assign(kPasses * kBuckets, 0);
  for (const auto& it : items) {
    for (int p = 0; p < kPasses; ++p) {
      ++hist[static_cast<std::size_t>(p) * kBuckets +
             ((it.key >> (p * kDigitBits)) & (kBuckets - 1))];
    }
  }

  swap.resize(n);
  std::vector<KeyedIndex, Alloc>* src = &items;
  std::vector<KeyedIndex, Alloc>* dst = &swap;
  for (int p = 0; p < kPasses; ++p) {
    std::uint32_t* h = hist.data() + static_cast<std::size_t>(p) * kBuckets;
    const std::size_t first_digit =
        (items.front().key >> (p * kDigitBits)) & (kBuckets - 1);
    if (h[first_digit] == n) continue;  // digit constant: pass is identity
    // Exclusive prefix sum turns counts into scatter cursors.
    std::uint32_t running = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint32_t count = h[b];
      h[b] = running;
      running += count;
    }
    for (const auto& it : *src) {
      (*dst)[h[(it.key >> (p * kDigitBits)) & (kBuckets - 1)]++] = it;
    }
    std::swap(src, dst);
  }
  if (src != &items) items.swap(swap);
}

}  // namespace ccdn
