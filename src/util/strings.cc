#include "util/strings.h"

#include <charconv>
#include <cstdio>

#include "util/error.h"

namespace ccdn {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' ||
           c == '\f';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

std::string join(const std::vector<std::string>& items,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += separator;
    out += items[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

std::int64_t parse_int(std::string_view text) {
  const std::string_view body = trim(text);
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(body.data(), body.data() + body.size(), value);
  if (ec != std::errc{} || ptr != body.data() + body.size()) {
    throw ParseError("not an integer: '" + std::string(text) + "'");
  }
  return value;
}

double parse_double(std::string_view text) {
  const std::string_view body = trim(text);
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(body.data(), body.data() + body.size(), value);
  if (ec != std::errc{} || ptr != body.data() + body.size()) {
    throw ParseError("not a number: '" + std::string(text) + "'");
  }
  return value;
}

std::string format_fixed(double value, int digits) {
  CCDN_REQUIRE(digits >= 0 && digits <= 17, "precision out of range");
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

}  // namespace ccdn
