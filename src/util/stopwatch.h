// Wall-clock stopwatch for the running-time experiments (Fig. 8).
#pragma once

#include <chrono>
#include <ctime>

namespace ccdn {

class Stopwatch {
 public:
  // ccdn-lint: allow(nondet-clock) -- timing telemetry only (Fig. 8 running
  // time); elapsed values are reported, never fed into a scheduling decision
  Stopwatch() noexcept : start_(Clock::now()) {}

  // ccdn-lint: allow(nondet-clock) -- timing telemetry only, see ctor
  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    // ccdn-lint: allow(nondet-clock) -- timing telemetry only, see ctor
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_millis() const noexcept {
    return elapsed_seconds() * 1e3;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// CPU time consumed by the calling thread. Used by the sharded solver's
/// forked children: when more children than cores run at once, the kernel
/// time-slices them and wall clocks inflate with the shard count, but each
/// child's thread-CPU time stays the cost a dedicated core (the production
/// per-machine deployment) would pay. Falls back to the wall clock where
/// the POSIX clock is unavailable.
class ThreadCpuStopwatch {
 public:
  ThreadCpuStopwatch() noexcept : start_(now()) {}

  void reset() noexcept { start_ = now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return now() - start_;
  }

 private:
  [[nodiscard]] static double now() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    std::timespec ts{};
    // ccdn-lint: allow(nondet-clock) -- per-thread CPU timing telemetry for
    // the shard-executor cost model; reported, never a scheduling input
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return std::chrono::duration<double>(
               // ccdn-lint: allow(nondet-clock) -- wall fallback for the
               // telemetry clock above; same display-only contract
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  double start_ = 0.0;
};

}  // namespace ccdn
