// Wall-clock stopwatch for the running-time experiments (Fig. 8).
#pragma once

#include <chrono>

namespace ccdn {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_millis() const noexcept {
    return elapsed_seconds() * 1e3;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ccdn
