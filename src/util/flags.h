// Tiny command-line flag parser for examples and benchmark binaries.
//
// Accepts `--name=value` and `--name value`; bare `--name` is treated as the
// boolean true. Positional arguments are collected in order. Unknown flags
// are an error only when the caller asks for strict validation.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ccdn {

class Flags {
 public:
  /// Parse argv (argv[0] is skipped). Throws ParseError on malformed input.
  Flags(int argc, const char* const* argv);

  /// Construct from pre-split tokens (useful in tests).
  explicit Flags(const std::vector<std::string>& tokens);

  [[nodiscard]] bool has(const std::string& name) const;

  /// Typed getters with defaults. Throw ParseError when the stored value
  /// cannot be converted.
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Names of flags that were set but never read; call after all getters to
  /// report typos to the user.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  void parse(const std::vector<std::string>& tokens);
  [[nodiscard]] std::optional<std::string> raw(const std::string& name) const;

  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> accessed_;
  std::vector<std::string> positional_;
};

}  // namespace ccdn
