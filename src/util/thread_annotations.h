// Clang thread-safety-analysis attribute macros (DESIGN.md §3.13).
//
// These wrap the [[clang::...]] capability attributes so the concurrency
// contracts of shared-state owners (util/mutex.h, util/thread_pool.h,
// util/log.cc, the simulator's clone-ring lanes, the slot-source cursors)
// are CHECKED AT COMPILE TIME under clang: a guarded member touched without
// its mutex, a lock released on the wrong path, or a REQUIRES contract
// broken by a caller becomes a -Wthread-safety error in the
// CCDN_THREAD_SAFETY build (cmake -DCCDN_THREAD_SAFETY=ON, clang only; the
// static-analysis CI job runs it with -Werror=thread-safety). On GCC and
// non-capability clang builds every macro expands to nothing, so the
// annotations are free documentation.
//
// Naming follows the clang documentation's canonical macro set
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) with a CCDN_
// prefix so nothing collides with abseil-style headers in downstream
// embedders.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CCDN_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CCDN_THREAD_ANNOTATION
#define CCDN_THREAD_ANNOTATION(x)
#endif

/// A type that is a synchronization capability (e.g. a mutex).
#define CCDN_CAPABILITY(x) CCDN_THREAD_ANNOTATION(capability(x))

/// An RAII type that acquires a capability in its constructor and releases
/// it in its destructor (e.g. MutexLock).
#define CCDN_SCOPED_CAPABILITY CCDN_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define CCDN_GUARDED_BY(x) CCDN_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose POINTEE is guarded by `x` (the pointer itself is
/// not).
#define CCDN_PT_GUARDED_BY(x) CCDN_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability and does not release it.
#define CCDN_ACQUIRE(...) \
  CCDN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define CCDN_RELEASE(...) \
  CCDN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function tries to acquire the capability; returns `ret` on success.
#define CCDN_TRY_ACQUIRE(...) \
  CCDN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability (exclusively) to call this function.
#define CCDN_REQUIRES(...) \
  CCDN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself;
/// catches self-deadlock on non-reentrant mutexes).
#define CCDN_EXCLUDES(...) CCDN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define CCDN_RETURN_CAPABILITY(x) CCDN_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's synchronization is correct for reasons the
/// analysis cannot see (e.g. happens-before established by a future/pipe
/// handoff). Every use must carry a comment naming that reason.
#define CCDN_NO_THREAD_SAFETY_ANALYSIS \
  CCDN_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Assert (to the analysis, not at runtime) that the capability is held —
/// for callbacks invoked by a holder the analysis cannot track through.
#define CCDN_ASSERT_CAPABILITY(x) \
  CCDN_THREAD_ANNOTATION(assert_capability(x))
