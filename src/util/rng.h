// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (trace generation, the Random
// routing baseline, sampling) draw from Rng so that every experiment is
// reproducible from a single 64-bit seed. The core generator is
// xoshiro256** (Blackman & Vigna), seeded via splitmix64.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/error.h"

namespace ccdn {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Deterministic 64-bit mix of two values (order sensitive).
[[nodiscard]] std::uint64_t hash_combine64(std::uint64_t a,
                                           std::uint64_t b) noexcept;

/// xoshiro256** generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it can also be handed to
/// <random> distributions if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n);

  /// Standard normal via Box-Muller (cached pair).
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean and standard deviation (sigma >= 0).
  [[nodiscard]] double normal(double mean, double sigma);

  /// Exponential with the given rate (rate > 0).
  [[nodiscard]] double exponential(double rate);

  /// Poisson-distributed count with the given mean (mean >= 0).
  /// Uses Knuth's method below 30 and a normal approximation above.
  [[nodiscard]] std::uint64_t poisson(double mean);

  /// Bernoulli trial with probability p in [0, 1].
  [[nodiscard]] bool chance(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[index(i)]);
    }
  }

  /// Pick a uniformly random element. Requires a non-empty vector.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& items) {
    CCDN_REQUIRE(!items.empty(), "pick from empty vector");
    return items[index(items.size())];
  }

  /// Derive an independent child generator; children with distinct tags
  /// produce independent streams regardless of draw order on the parent.
  [[nodiscard]] Rng fork(std::uint64_t tag) const noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Sample k distinct indices from [0, n) uniformly (Floyd's algorithm).
/// Result is in ascending order. Requires k <= n.
[[nodiscard]] std::vector<std::size_t> sample_indices(Rng& rng, std::size_t n,
                                                      std::size_t k);

}  // namespace ccdn
