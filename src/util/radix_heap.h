// Monotone 64-bit radix heap for Dijkstra on integer costs.
//
// A binary heap pays O(log n) compare-and-swap shuffles per push and pop;
// on the θ sweep's warm searches the heap traffic is the dominant cost
// after the adjacency walk. For monotone workloads — every pushed key is
// >= the last popped key, which Dijkstra with non-negative reduced costs
// guarantees — a radix heap does both operations in O(1) amortized: an
// entry is binned by the position of the highest bit in which its key
// differs from the last popped minimum, and is re-binned at most 64 times
// over its lifetime (each re-bin strictly lowers its bucket index).
//
// Keys are raw uint64 values (the integer-cost engine uses non-negative
// int64 distances, which order identically as uint64); values are the
// 32-bit payload (a NodeId). Ties pop in unspecified order, exactly like
// std::push_heap/pop_heap — callers needing a deterministic tie order must
// not depend on either heap's (the MCMF integer mode is a plan-equality
// variant for this reason; see DESIGN.md §3.11).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/error.h"

namespace ccdn {

class RadixHeap64 {
 public:
  using Entry = std::pair<std::uint64_t, std::uint32_t>;  // (key, value)

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Drop all entries and reset the monotone floor to zero. Bucket storage
  /// is retained, so a search loop reusing one heap allocates nothing once
  /// the buckets reach steady-state size.
  void clear() noexcept {
    for (auto& bucket : buckets_) bucket.clear();
    last_ = 0;
    size_ = 0;
  }

  /// Requires key >= the key of the last pop() (monotonicity).
  void push(std::uint64_t key, std::uint32_t value) {
    CCDN_ASSERT(key >= last_, "radix heap requires monotone keys");
    buckets_[bucket_of(key, last_)].emplace_back(key, value);
    ++size_;
  }

  /// Remove and return a minimum-key entry.
  Entry pop() {
    CCDN_REQUIRE(size_ > 0, "pop from empty radix heap");
    if (buckets_[0].empty()) {
      // Refill: find the lowest non-empty bucket, advance the floor to its
      // minimum key, and re-bin its entries. Everything with the new
      // minimum key lands in bucket 0 (key == last_); the rest drop to
      // strictly lower buckets than the one they left.
      std::size_t b = 1;
      while (buckets_[b].empty()) ++b;
      std::uint64_t min_key = buckets_[b].front().first;
      for (const Entry& entry : buckets_[b]) {
        if (entry.first < min_key) min_key = entry.first;
      }
      last_ = min_key;
      for (const Entry& entry : buckets_[b]) {
        buckets_[bucket_of(entry.first, last_)].push_back(entry);
      }
      buckets_[b].clear();
    }
    const Entry top = buckets_[0].back();
    buckets_[0].pop_back();
    --size_;
    return top;
  }

 private:
  /// Entries are binned by the highest differing bit vs the current floor:
  /// bucket 0 holds keys equal to the floor, bucket i keys differing first
  /// at bit i-1.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t key,
                                             std::uint64_t floor) noexcept {
    return key == floor
               ? 0
               : static_cast<std::size_t>(64 - std::countl_zero(key ^ floor));
  }

  std::array<std::vector<Entry>, 65> buckets_;
  std::uint64_t last_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ccdn
