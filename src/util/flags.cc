#include "util/flags.h"

#include "util/error.h"
#include "util/strings.h"

namespace ccdn {

Flags::Flags(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  tokens.reserve(argc > 0 ? static_cast<std::size_t>(argc) - 1 : 0);
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  parse(tokens);
}

Flags::Flags(const std::vector<std::string>& tokens) { parse(tokens); }

void Flags::parse(const std::vector<std::string>& tokens) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (!starts_with(token, "--")) {
      positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    if (body.empty()) throw ParseError("bare '--' is not a flag");
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` form, unless the next token is itself a flag.
    if (i + 1 < tokens.size() && !starts_with(tokens[i + 1], "--")) {
      values_[body] = tokens[i + 1];
      ++i;
    } else {
      values_[body] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::optional<std::string> Flags::raw(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  accessed_[name] = true;
  return it->second;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  return raw(name).value_or(fallback);
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto value = raw(name);
  return value ? parse_int(*value) : fallback;
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto value = raw(name);
  return value ? parse_double(*value) : fallback;
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto value = raw(name);
  if (!value) return fallback;
  if (*value == "true" || *value == "1" || *value == "yes") return true;
  if (*value == "false" || *value == "0" || *value == "no") return false;
  throw ParseError("flag --" + name + " is not a boolean: '" + *value + "'");
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : values_) {
    if (!accessed_.count(name)) names.push_back(name);
  }
  return names;
}

}  // namespace ccdn
