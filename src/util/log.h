// Leveled logging to stderr.
//
// Benchmarks print their result tables to stdout; diagnostics go through
// here so the two streams never mix.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace ccdn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the minimum level that is emitted (default: kInfo).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Redirect log output (default / nullptr: stderr). The sink is guarded by
/// the same mutex that serializes log_line, so swapping it mid-run cannot
/// tear a line. Returns the previous sink. Intended for tests.
std::FILE* set_log_sink(std::FILE* sink);

/// Emit one line (thread-safe).
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) noexcept : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace ccdn

#define CCDN_LOG_DEBUG ::ccdn::detail::LogStream(::ccdn::LogLevel::kDebug)
#define CCDN_LOG_INFO ::ccdn::detail::LogStream(::ccdn::LogLevel::kInfo)
#define CCDN_LOG_WARN ::ccdn::detail::LogStream(::ccdn::LogLevel::kWarn)
#define CCDN_LOG_ERROR ::ccdn::detail::LogStream(::ccdn::LogLevel::kError)
