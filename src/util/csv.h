// Minimal CSV reader/writer with RFC-4180 style quoting.
//
// Used for trace serialization and for emitting benchmark series that can be
// plotted directly. Fields containing the delimiter, quotes or newlines are
// quoted on write; quoted fields are unescaped on read.
#pragma once

#include <iosfwd>
#include <type_traits>
#include <string>
#include <vector>

namespace ccdn {

class CsvWriter {
 public:
  /// Writes to an externally owned stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out, char delimiter = ',');

  /// Write one row; fields are quoted as needed.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: stringify and write heterogeneous fields.
  template <typename... Fields>
  void row(const Fields&... fields) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(fields));
    (cells.push_back(to_cell(fields)), ...);
    write_row(cells);
  }

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(double v);
  template <typename T>
    requires std::is_integral_v<T>
  static std::string to_cell(T v) {
    return std::to_string(v);
  }

  std::ostream& out_;
  char delimiter_;
  std::size_t rows_ = 0;
};

class CsvReader {
 public:
  /// Reads from an externally owned stream; the stream must outlive the
  /// reader.
  explicit CsvReader(std::istream& in, char delimiter = ',');

  /// Read the next row into `fields`; returns false at end of input.
  /// Throws ParseError on an unterminated quoted field.
  bool read_row(std::vector<std::string>& fields);

  [[nodiscard]] std::size_t rows_read() const noexcept { return rows_; }

 private:
  std::istream& in_;
  char delimiter_;
  std::size_t rows_ = 0;
};

}  // namespace ccdn
