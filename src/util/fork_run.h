// Fork-isolated task execution with a pipe result channel.
//
// Shared by bench/stream_scalability (per-case peak-RSS isolation: getrusage
// is a process-lifetime high watermark, so every measured case needs its own
// process) and the zone-sharded scheduler's process-per-shard executor
// (core/shard_solver.h). A task is a callable returning a byte payload; the
// child writes [u64 length][bytes] on its end of the pipe and _exit()s, the
// parent reads the payload back and collects the child's exit status and
// rusage from wait4.
//
// Deadlock discipline for fan-out (fork_run_all): fork ALL children first,
// then read each pipe to completion, and only then reap. Children never
// block on each other — a child whose payload exceeds the pipe capacity
// simply waits until the parent's read loop reaches its pipe — and the
// parent never waits on a child whose pipe it has not yet drained, which is
// the classic pipe-capacity deadlock.
//
// Exit-status contract: exit_code() is the child's real _exit code
// (WEXITSTATUS), or 128+signal when the child died on a signal — callers
// that re-exit with it (stream_scalability does) propagate the child's
// failure mode instead of swallowing it in a raw wait status. A task that
// throws exits with kExceptionExit.
#pragma once

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "util/peak_rss.h"

namespace ccdn {

/// A fork-isolated unit of work: runs in the child, returns the bytes to
/// ship back to the parent.
using ForkTask = std::function<std::vector<std::uint8_t>()>;

struct ForkResult {
  /// The task's returned bytes, as read back from the pipe. Meaningful only
  /// when `complete` is true.
  std::vector<std::uint8_t> payload;
  /// Payload fully received AND child exited 0.
  bool complete = false;
  /// WEXITSTATUS on normal exit, 128+signal on a signal death, -1 when the
  /// child could not be reaped.
  int exit_code = 0;
  /// Child peak RSS (wait4 rusage), MiB.
  double peak_rss_mb = 0.0;
};

/// _exit code used when a task throws inside the child.
inline constexpr int kForkExceptionExit = 121;

namespace detail {

inline bool write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n <= 0) return false;
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

inline bool read_all(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::read(fd, p, size);
    if (n <= 0) return false;
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

[[noreturn]] inline void child_main(int write_fd, const ForkTask& task) {
  int code = 0;
  try {
    const std::vector<std::uint8_t> payload = task();
    const std::uint64_t length = payload.size();
    if (!write_all(write_fd, &length, sizeof(length)) ||
        (length > 0 && !write_all(write_fd, payload.data(), payload.size()))) {
      code = 1;
    }
  } catch (...) {
    code = kForkExceptionExit;
  }
  // _exit, not exit: the child shares the parent's stdio buffers and atexit
  // registrations and must not flush or run them.
  _exit(code);
}

}  // namespace detail

/// Run every task in its own forked child, in task order; returns one
/// ForkResult per task, same order. Fan-out is real: all children run
/// concurrently, and the parent drains pipes before reaping (see the
/// header comment for the deadlock argument).
inline std::vector<ForkResult> fork_run_all(std::span<const ForkTask> tasks) {
  struct Child {
    pid_t pid = -1;
    int read_fd = -1;
  };
  std::vector<Child> children(tasks.size());
  std::vector<ForkResult> results(tasks.size());

  for (std::size_t t = 0; t < tasks.size(); ++t) {
    int fds[2];
    if (::pipe(fds) != 0) {
      std::perror("fork_run: pipe");
      results[t].exit_code = -1;
      continue;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork_run: fork");
      ::close(fds[0]);
      ::close(fds[1]);
      results[t].exit_code = -1;
      continue;
    }
    if (pid == 0) {
      ::close(fds[0]);
      // Drop read ends inherited from earlier iterations so a sibling's
      // pipe cannot be held open by this child.
      for (std::size_t s = 0; s < t; ++s) {
        if (children[s].read_fd >= 0) ::close(children[s].read_fd);
      }
      detail::child_main(fds[1], tasks[t]);
    }
    ::close(fds[1]);
    children[t] = {pid, fds[0]};
  }

  // Phase 2: drain every pipe to completion.
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    if (children[t].pid < 0) continue;
    std::uint64_t length = 0;
    bool ok = detail::read_all(children[t].read_fd, &length, sizeof(length));
    if (ok) {
      results[t].payload.resize(length);
      ok = length == 0 || detail::read_all(children[t].read_fd,
                                           results[t].payload.data(), length);
    }
    if (!ok) results[t].payload.clear();
    results[t].complete = ok;
    ::close(children[t].read_fd);
  }

  // Phase 3: reap, collecting exit codes and child peak RSS.
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    if (children[t].pid < 0) continue;
    int status = 0;
    rusage usage{};
    if (::wait4(children[t].pid, &status, 0, &usage) != children[t].pid) {
      results[t].exit_code = -1;
      results[t].complete = false;
      continue;
    }
    results[t].peak_rss_mb = peak_rss_mb(usage);
    if (WIFEXITED(status)) {
      results[t].exit_code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      results[t].exit_code = 128 + WTERMSIG(status);
    } else {
      results[t].exit_code = -1;
    }
    results[t].complete = results[t].complete && results[t].exit_code == 0;
  }
  return results;
}

/// Single-task convenience wrapper.
inline ForkResult fork_run(const ForkTask& task) {
  const ForkTask tasks[] = {task};
  return std::move(fork_run_all(std::span<const ForkTask>(tasks)).front());
}

}  // namespace ccdn
