#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <set>

namespace ccdn {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_combine64(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  CCDN_REQUIRE(lo <= hi, "uniform range inverted");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CCDN_REQUIRE(lo <= hi, "uniform_int range inverted");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = (*this)();
  while (draw >= limit) draw = (*this)();
  return lo + static_cast<std::int64_t>(draw % span);
}

std::size_t Rng::index(std::size_t n) {
  CCDN_REQUIRE(n > 0, "index over empty range");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double sigma) {
  CCDN_REQUIRE(sigma >= 0.0, "negative standard deviation");
  return mean + sigma * normal();
}

double Rng::exponential(double rate) {
  CCDN_REQUIRE(rate > 0.0, "exponential rate must be positive");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  CCDN_REQUIRE(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    const double threshold = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform();
    while (product > threshold) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for workload
  // synthesis where mean is large.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(draw));
}

bool Rng::chance(double p) {
  CCDN_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of [0,1]");
  return uniform() < p;
}

Rng Rng::fork(std::uint64_t tag) const noexcept {
  std::uint64_t mixed = state_[0];
  mixed = hash_combine64(mixed, state_[1]);
  mixed = hash_combine64(mixed, state_[2]);
  mixed = hash_combine64(mixed, state_[3]);
  mixed = hash_combine64(mixed, tag);
  return Rng(mixed);
}

std::vector<std::size_t> sample_indices(Rng& rng, std::size_t n,
                                        std::size_t k) {
  CCDN_REQUIRE(k <= n, "cannot sample more than population");
  // Floyd's algorithm: k iterations, O(k log k) with an ordered set.
  std::set<std::size_t> chosen;
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = rng.index(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  return {chosen.begin(), chosen.end()};
}

}  // namespace ccdn
