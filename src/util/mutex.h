// Annotated mutex primitives (DESIGN.md §3.13).
//
// ccdn::Mutex / MutexLock / CondVar are thin std::mutex wrappers carrying
// the clang thread-safety capability attributes from
// util/thread_annotations.h. Shared-state owners declare their protected
// members CCDN_GUARDED_BY(mu_) and the CCDN_THREAD_SAFETY build turns any
// unguarded access into a compile error; on GCC the wrappers compile to the
// exact std::lock_guard/std::condition_variable code they replace.
//
// CondVar deliberately exposes only the un-predicated wait(): the classic
// `cv.wait(lock, [this] { return guarded_state(); })` form hides the
// guarded reads inside a lambda the analysis treats as a separate,
// lock-free function, so every waiter here is written as an explicit
// `while (!condition) cv.wait(mu);` loop the analysis can see through.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace ccdn {

class CCDN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CCDN_ACQUIRE() { mu_.lock(); }
  void unlock() CCDN_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() CCDN_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for the full enclosing scope (the std::lock_guard analogue).
class CCDN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CCDN_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CCDN_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to ccdn::Mutex. wait() requires the caller to
/// hold the mutex (checked), releases it for the duration of the block, and
/// reacquires before returning — i.e. the capability is held again when the
/// caller re-tests its condition.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) CCDN_REQUIRES(mu) {
    // Adopt the already-held mutex so std::condition_variable can release
    // and reacquire it; release() afterwards hands ownership back to the
    // caller's MutexLock without a second unlock.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ccdn
