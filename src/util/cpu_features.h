// Runtime ISA probing and SIMD-path selection for the hand-vectorized
// kernels (the Jd similarity engine, DESIGN.md §3.14).
//
// The AVX2 kernels live in their own translation unit compiled with
// -mavx2, so one binary carries both code paths and picks at runtime:
// `cpu_has_avx2()` is a one-time cpuid probe (memoized in a function-local
// static — deterministic for the life of the process), and SimdMode is the
// user-facing override threaded from `--simd` / config structs down to the
// kernels. kAuto selects the widest available path; the forced modes exist
// so CI can pin either leg and so differential tests can compare them.
#pragma once

#include <string>

namespace ccdn {

/// Which SIMD implementation the batch kernels should use.
///   kAuto   — AVX2 when the kernel was compiled in AND the CPU reports it,
///             else scalar. The default everywhere.
///   kScalar — force the scalar-popcount path (oracle / portability pin).
///   kAvx2   — force AVX2; a PreconditionError if the binary has no AVX2
///             kernel or the CPU lacks the feature (never silently degrades,
///             so a CI leg that requests AVX2 really exercised AVX2).
enum class SimdMode { kAuto, kScalar, kAvx2 };

/// True when the executing CPU supports AVX2 (cpuid, probed once).
/// Always false on non-x86 targets.
[[nodiscard]] bool cpu_has_avx2() noexcept;

/// Human-readable mode name: "auto", "scalar", "avx2".
[[nodiscard]] const char* simd_mode_name(SimdMode mode) noexcept;

/// Parse a `--simd` flag value ("auto" | "scalar" | "avx2"); throws
/// PreconditionError naming the bad value otherwise.
[[nodiscard]] SimdMode parse_simd_mode(const std::string& text);

}  // namespace ccdn
