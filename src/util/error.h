// Error types and contract-checking macros used across the library.
//
// The library follows the C++ Core Guidelines error-handling model (E.2):
// exceptions for errors that cannot be handled locally, contract macros for
// programmer errors at API boundaries (I.6/I.8).
#pragma once

#include <stdexcept>
#include <string>

namespace ccdn {

/// Base class for all errors thrown by this library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A caller violated a documented precondition.
class PreconditionError : public Error {
 public:
  using Error::Error;
};

/// An internal invariant did not hold (library bug).
class InvariantError : public Error {
 public:
  using Error::Error;
};

/// Parsing or I/O of external data failed.
class ParseError : public Error {
 public:
  using Error::Error;
};

/// A solver could not produce a solution (infeasible/unbounded/iteration cap).
class SolverError : public Error {
 public:
  using Error::Error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  throw PreconditionError(std::string("precondition failed: ") + expr + " at " +
                          file + ":" + std::to_string(line) +
                          (msg.empty() ? "" : (": " + msg)));
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  throw InvariantError(std::string("invariant failed: ") + expr + " at " +
                       file + ":" + std::to_string(line) +
                       (msg.empty() ? "" : (": " + msg)));
}

}  // namespace detail
}  // namespace ccdn

/// Check a precondition at a public API boundary.
#define CCDN_REQUIRE(expr, msg)                                         \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::ccdn::detail::throw_precondition(#expr, __FILE__, __LINE__, msg); \
    }                                                                   \
  } while (false)

/// Check an internal invariant; failure indicates a bug in this library.
#define CCDN_ENSURE(expr, msg)                                        \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::ccdn::detail::throw_invariant(#expr, __FILE__, __LINE__, msg); \
    }                                                                 \
  } while (false)

namespace ccdn {

/// True when CCDN_ASSERT compiles to a real check (NDEBUG not defined).
/// Tests that exercise assert-only contracts gate on this.
#ifdef NDEBUG
inline constexpr bool kCheckedBuild = false;
#else
inline constexpr bool kCheckedBuild = true;
#endif

}  // namespace ccdn

/// Debug-only precondition for hot paths: a CCDN_REQUIRE in checked
/// (NDEBUG-off) builds, compiled out entirely in release builds. Use where
/// a per-call check would sit inside a performance-critical inner loop.
#ifdef NDEBUG
#define CCDN_ASSERT(expr, msg) ((void)0)
#else
#define CCDN_ASSERT(expr, msg) CCDN_REQUIRE(expr, msg)
#endif
