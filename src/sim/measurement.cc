#include "sim/measurement.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "cluster/topset_bitmap.h"
#include "model/demand.h"
#include "model/timeslots.h"
#include "model/topsets.h"
#include "stats/correlation.h"
#include "util/error.h"

namespace ccdn {

namespace {

RoutedDemand route_with(const GridIndex& index,
                        std::span<const Request> requests,
                        const std::function<std::size_t(const Request&)>& pick) {
  RoutedDemand routed;
  routed.workloads.assign(index.size(), 0);
  std::vector<std::unordered_map<VideoId, std::uint32_t>> seen(index.size());
  for (const Request& request : requests) {
    const std::size_t h = pick(request);
    ++routed.workloads[h];
    ++seen[h][request.video];
  }
  routed.videos_per_hotspot.resize(index.size());
  for (std::size_t h = 0; h < index.size(); ++h) {
    auto& videos = routed.videos_per_hotspot[h];
    videos.reserve(seen[h].size());
    // ccdn-lint: allow(unordered-iteration) -- extract-then-sort: videos is
    // fully sorted by id before use
    for (const auto& [video, _] : seen[h]) videos.push_back(video);
    std::sort(videos.begin(), videos.end());
  }
  return routed;
}

}  // namespace

std::size_t RoutedDemand::total_replication_cost() const {
  std::size_t total = 0;
  for (const auto& videos : videos_per_hotspot) total += videos.size();
  return total;
}

RoutedDemand route_nearest(const GridIndex& index,
                           std::span<const Request> requests) {
  return route_with(index, requests, [&](const Request& r) {
    return index.nearest(r.location);
  });
}

RoutedDemand route_random_radius(const GridIndex& index,
                                 std::span<const Request> requests,
                                 double radius_km, Rng& rng) {
  CCDN_REQUIRE(radius_km > 0.0, "non-positive radius");
  // Cache radius query results per nearest-hotspot bucket: requests share
  // neighbourhoods, and per-request radius queries on millions of rows
  // would dominate the measurement.
  std::vector<std::vector<std::size_t>> neighbourhood(index.size());
  return route_with(index, requests, [&](const Request& r) {
    const std::size_t home = index.nearest(r.location);
    auto& pool = neighbourhood[home];
    if (pool.empty()) {
      pool = index.within_radius(index.point(home), radius_km);
      if (pool.empty()) pool.push_back(home);
    }
    return pool[rng.index(pool.size())];
  });
}

std::vector<std::uint32_t> nearest_workloads(const GridIndex& index,
                                             std::span<const Request> requests) {
  return route_nearest(index, requests).workloads;
}

std::vector<std::uint32_t> random_radius_workloads(
    const GridIndex& index, std::span<const Request> requests,
    double radius_km, Rng& rng) {
  return route_random_radius(index, requests, radius_km, rng).workloads;
}

std::vector<double> workload_correlations(const GridIndex& index,
                                          std::span<const Request> requests,
                                          double pair_radius_km,
                                          std::int64_t slot_seconds,
                                          std::size_t max_pairs, Rng& rng) {
  CCDN_REQUIRE(!requests.empty(), "empty trace");
  const std::vector<SlotRange> slots =
      partition_into_slots(requests, slot_seconds);
  CCDN_REQUIRE(slots.size() >= 2, "need at least two slots for correlation");

  // Hourly load series per hotspot.
  std::vector<std::vector<double>> series(
      index.size(), std::vector<double>(slots.size(), 0.0));
  for (std::size_t s = 0; s < slots.size(); ++s) {
    for (std::size_t r = slots[s].begin; r < slots[s].end; ++r) {
      series[index.nearest(requests[r].location)][s] += 1.0;
    }
  }

  // Enumerate nearby pairs; reservoir-sample down to max_pairs.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  std::size_t seen = 0;
  for (std::size_t i = 0; i < index.size(); ++i) {
    for (const std::size_t j : index.within_radius(index.point(i),
                                                   pair_radius_km)) {
      if (j <= i) continue;
      ++seen;
      if (pairs.size() < max_pairs) {
        pairs.emplace_back(i, j);
      } else {
        const std::size_t slot = rng.index(seen);
        if (slot < max_pairs) pairs[slot] = {i, j};
      }
    }
  }

  std::vector<double> correlations;
  correlations.reserve(pairs.size());
  for (const auto& [i, j] : pairs) {
    correlations.push_back(spearman_correlation(series[i], series[j]));
  }
  return correlations;
}

std::vector<double> content_similarities(
    std::span<const GeoPoint> hotspot_locations,
    std::span<const Request> requests, double sample_ratio,
    double pair_radius_km, double top_fraction, std::size_t max_pairs,
    Rng& rng) {
  CCDN_REQUIRE(sample_ratio > 0.0 && sample_ratio <= 1.0,
               "sample ratio outside (0,1]");
  CCDN_REQUIRE(!hotspot_locations.empty(), "no hotspots");

  // Sample the hotspot subset and rebuild the spatial index over it.
  const auto k = std::max<std::size_t>(
      2, static_cast<std::size_t>(sample_ratio *
                                  static_cast<double>(hotspot_locations.size())));
  std::vector<std::size_t> chosen =
      sample_indices(rng, hotspot_locations.size(), k);
  std::vector<GeoPoint> sampled;
  sampled.reserve(chosen.size());
  for (const std::size_t idx : chosen) sampled.push_back(hotspot_locations[idx]);
  const GridIndex index(std::move(sampled), /*cell_km=*/1.0);

  // Re-route everything Nearest onto the sampled set and take top sets.
  const SlotDemand demand(requests, index);
  const auto top_sets = top_sets_per_hotspot(demand, top_fraction);

  std::vector<double> similarities;
  std::size_t seen = 0;
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < index.size(); ++i) {
    for (const std::size_t j : index.within_radius(index.point(i),
                                                   pair_radius_km)) {
      if (j <= i) continue;
      // Pairs where either side saw no requests carry no signal.
      if (top_sets[i].empty() || top_sets[j].empty()) continue;
      ++seen;
      if (pairs.size() < max_pairs) {
        pairs.emplace_back(i, j);
      } else {
        const std::size_t slot = rng.index(seen);
        if (slot < max_pairs) pairs[slot] = {i, j};
      }
    }
  }
  // Word-parallel kernel; bit-identical to jaccard_similarity per pair.
  const TopsetBitmap bitmap(top_sets);
  similarities.reserve(pairs.size());
  for (const auto& [i, j] : pairs) {
    similarities.push_back(bitmap.jaccard(i, j));
  }
  return similarities;
}

}  // namespace ccdn
