// Measurement-study analyses (paper §II).
//
// These functions reproduce the statistics that motivate RBCAer:
//   * per-hotspot workload distribution under Nearest and Random-radius
//     routing (Fig. 2) and the associated replication-cost comparison,
//   * Spearman workload correlation between nearby hotspot pairs (Fig. 3a),
//   * Jaccard content similarity between nearby hotspot pairs at several
//     hotspot sample ratios (Fig. 3b).
#pragma once

#include <span>
#include <vector>

#include "geo/grid_index.h"
#include "model/types.h"
#include "util/rng.h"

namespace ccdn {

/// Per-hotspot request counts when every request goes to its nearest
/// hotspot.
[[nodiscard]] std::vector<std::uint32_t> nearest_workloads(
    const GridIndex& hotspot_index, std::span<const Request> requests);

/// Per-hotspot request counts when each request picks a uniformly random
/// hotspot within `radius_km` of it (its nearest hotspot if none in range).
[[nodiscard]] std::vector<std::uint32_t> random_radius_workloads(
    const GridIndex& hotspot_index, std::span<const Request> requests,
    double radius_km, Rng& rng);

/// Distinct videos requested per hotspot under an assignment produced by
/// one of the workload functions above — the §II-A "replicate everything
/// requested" replication-cost model. Returns the per-hotspot distinct
/// counts; sum them for the total cost.
struct RoutedDemand {
  std::vector<std::uint32_t> workloads;
  std::vector<std::vector<VideoId>> videos_per_hotspot;  // sorted distinct
  [[nodiscard]] std::size_t total_replication_cost() const;
};
[[nodiscard]] RoutedDemand route_nearest(const GridIndex& hotspot_index,
                                         std::span<const Request> requests);
[[nodiscard]] RoutedDemand route_random_radius(
    const GridIndex& hotspot_index, std::span<const Request> requests,
    double radius_km, Rng& rng);

/// Spearman workload correlation over hourly load series for hotspot pairs
/// closer than `pair_radius_km` (Fig. 3a). Requests are bucketed into
/// `slot_seconds` slots and routed Nearest. At most `max_pairs` pairs are
/// (deterministically) sampled.
[[nodiscard]] std::vector<double> workload_correlations(
    const GridIndex& hotspot_index, std::span<const Request> requests,
    double pair_radius_km, std::int64_t slot_seconds, std::size_t max_pairs,
    Rng& rng);

/// Jaccard similarity of Top-`top_fraction` content sets for hotspot pairs
/// closer than `pair_radius_km`, after sampling `sample_ratio` of the
/// hotspots and re-routing requests to the sampled set (Fig. 3b).
[[nodiscard]] std::vector<double> content_similarities(
    std::span<const GeoPoint> hotspot_locations,
    std::span<const Request> requests, double sample_ratio,
    double pair_radius_km, double top_fraction, std::size_t max_pairs,
    Rng& rng);

}  // namespace ccdn
