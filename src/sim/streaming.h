// Session-level streaming simulator.
//
// The paper's model is slot-granular: s_h counts *requests per slot*. Real
// video sessions, however, overlap in time — a hotspot's true constraint is
// its number of *concurrent upload streams*. This simulator keeps the
// scheduling layer unchanged (plans are still made per slot from aggregated
// demand) but admits at session granularity: a session occupies one stream
// on its serving hotspot from its start until its end, and is rejected to
// the CDN if all streams are busy at its start instant. This checks that
// RBCAer's advantage is not an artifact of the slotted capacity model.
#pragma once

#include <span>

#include "core/scheme.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace ccdn {

/// A request with a watch duration.
struct Session {
  Request request;
  std::int64_t duration_seconds = 0;
};

/// Attach synthetic watch durations to a trace: log-normal with the given
/// median (minutes) and sigma (of the underlying normal), truncated to
/// [30 s, 4 h] — the shape VoD session studies report. Deterministic in
/// `seed`.
[[nodiscard]] std::vector<Session> attach_durations(
    std::span<const Request> requests, double median_minutes = 12.0,
    double sigma = 0.9, std::uint64_t seed = 2718);

struct StreamingConfig {
  /// Slot length for the *planning* layer.
  std::int64_t slot_seconds = 3600;
  double cdn_distance_km = kCdnDistanceKm;
  /// Concurrent streams per hotspot = service_capacity x this factor
  /// (per-slot request budgets translate to fewer simultaneous streams).
  double concurrency_factor = 0.25;
  bool charge_placement_deltas = true;
};

struct StreamingReport {
  std::size_t total_sessions = 0;
  std::size_t served_sessions = 0;
  std::size_t rejected_busy = 0;       // all streams occupied
  std::size_t rejected_placement = 0;  // video not cached at target
  std::size_t replicas = 0;
  double distance_sum_km = 0.0;
  /// Highest concurrency observed on any hotspot.
  std::size_t peak_concurrency = 0;
  std::uint32_t num_videos = 1;

  [[nodiscard]] double serving_ratio() const noexcept {
    return total_sessions == 0 ? 0.0
                               : static_cast<double>(served_sessions) /
                                     static_cast<double>(total_sessions);
  }
  [[nodiscard]] double average_distance_km() const noexcept {
    return total_sessions == 0
               ? 0.0
               : distance_sum_km / static_cast<double>(total_sessions);
  }
  [[nodiscard]] double replication_cost() const noexcept {
    return static_cast<double>(replicas) / static_cast<double>(num_videos);
  }
  [[nodiscard]] double cdn_server_load() const noexcept {
    if (total_sessions == 0) return 0.0;
    return (static_cast<double>(total_sessions - served_sessions) +
            static_cast<double>(replicas)) /
           static_cast<double>(total_sessions);
  }
};

/// Run a scheme over a session trace with concurrent-stream admission.
/// Sessions must be sorted by start timestamp.
[[nodiscard]] StreamingReport run_streaming(
    const std::vector<Hotspot>& hotspots, VideoCatalog catalog,
    RedirectionScheme& scheme, std::span<const Session> sessions,
    const StreamingConfig& config = {});

}  // namespace ccdn
