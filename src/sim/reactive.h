// Reactive-caching baseline simulator.
//
// No scheduling server, no prefetching: every request goes to its nearest
// hotspot; on a cache miss the hotspot fetches the video from the origin
// CDN (one unit of replication traffic), evicting per the configured
// policy, and serves the user if it has service capacity this slot. This
// is the "just put a cache on the AP" strawman against which the paper's
// planned prefetching is measured.
#pragma once

#include <span>

#include "cache/policies.h"
#include "sim/simulator.h"

namespace ccdn {

struct ReactiveConfig {
  CachePolicy policy = CachePolicy::kLru;
  SimulationConfig simulation;
  /// If true, a fetched video can serve the request that triggered the
  /// fetch (cut-through); if false the triggering request goes to the CDN
  /// and only later requests benefit.
  bool serve_on_fetch = true;
};

/// Run the reactive baseline over a trace. Replication cost counts origin
/// fetches; caches persist across slots (they are device state), while
/// service capacity resets per slot like everywhere else.
[[nodiscard]] SimulationReport run_reactive(
    const std::vector<Hotspot>& hotspots, VideoCatalog catalog,
    std::span<const Request> requests, const ReactiveConfig& config = {});

}  // namespace ccdn
