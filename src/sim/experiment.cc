#include "sim/experiment.h"

#include <ostream>

#include "util/csv.h"

#include "util/error.h"
#include "util/log.h"

namespace ccdn {

SweepPoint run_single(const World& world, std::span<const Request> requests,
                      const NamedSchemeFactory& scheme,
                      double service_fraction, double cache_fraction,
                      const SimulationConfig& simulation) {
  World configured = world;  // cheap relative to a simulation run
  assign_uniform_capacities(configured, service_fraction, cache_fraction);
  Simulator simulator(configured.hotspots(),
                      VideoCatalog{configured.config().num_videos},
                      simulation);
  const SchemePtr instance = scheme.make();
  CCDN_REQUIRE(instance != nullptr, "scheme factory returned null");
  const SimulationReport report = simulator.run(*instance, requests);

  SweepPoint point;
  point.scheme = scheme.label.empty() ? instance->name() : scheme.label;
  point.serving_ratio = report.serving_ratio();
  point.average_distance_km = report.average_distance_km();
  point.replication_cost = report.replication_cost();
  point.cdn_server_load = report.cdn_server_load();
  return point;
}

namespace {

std::vector<SweepPoint> run_sweep(const World& world,
                                  std::span<const Request> requests,
                                  const std::vector<NamedSchemeFactory>& schemes,
                                  const SweepConfig& config,
                                  bool sweep_is_capacity) {
  CCDN_REQUIRE(!config.swept_fractions.empty(), "empty sweep");
  CCDN_REQUIRE(config.fixed_fraction > 0.0, "fixed fraction must be positive");
  std::vector<SweepPoint> points;
  points.reserve(config.swept_fractions.size() * schemes.size());
  for (const double fraction : config.swept_fractions) {
    for (const auto& scheme : schemes) {
      const double service =
          sweep_is_capacity ? fraction : config.fixed_fraction;
      const double cache = sweep_is_capacity ? config.fixed_fraction : fraction;
      SweepPoint point = run_single(world, requests, scheme, service, cache,
                                    config.simulation);
      point.parameter = fraction;
      CCDN_LOG_DEBUG << "sweep " << (sweep_is_capacity ? "capacity" : "cache")
                     << "=" << fraction << " scheme=" << point.scheme
                     << " serving=" << point.serving_ratio;
      points.push_back(std::move(point));
    }
  }
  return points;
}

}  // namespace

std::vector<SweepPoint> run_capacity_sweep(
    const World& world, std::span<const Request> requests,
    const std::vector<NamedSchemeFactory>& schemes, const SweepConfig& config) {
  return run_sweep(world, requests, schemes, config, /*sweep_is_capacity=*/true);
}

std::vector<SweepPoint> run_cache_sweep(
    const World& world, std::span<const Request> requests,
    const std::vector<NamedSchemeFactory>& schemes, const SweepConfig& config) {
  return run_sweep(world, requests, schemes, config,
                   /*sweep_is_capacity=*/false);
}

void write_sweep_csv(std::ostream& out,
                     const std::vector<SweepPoint>& points) {
  CsvWriter writer(out);
  writer.row("parameter", "scheme", "serving_ratio", "avg_distance_km",
             "replication_cost", "cdn_server_load");
  for (const auto& p : points) {
    writer.row(p.parameter, p.scheme, p.serving_ratio, p.average_distance_km,
               p.replication_cost, p.cdn_server_load);
  }
}

}  // namespace ccdn
