// Parameter-sweep experiment drivers for the paper's Figs. 6 and 7.
//
// Each sweep point rebuilds the hotspot capacities (as fractions of the
// video-set size, the paper's parameterization), runs every scheme over the
// same trace, and records the four §V-A metrics.
#pragma once

#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/scheme.h"
#include "sim/simulator.h"
#include "trace/world.h"

namespace ccdn {

/// Factory so each sweep point gets a fresh (deterministic) scheme.
using SchemeFactory = std::function<SchemePtr()>;

struct NamedSchemeFactory {
  std::string label;
  SchemeFactory make;
};

struct SweepPoint {
  double parameter = 0.0;  // the swept fraction (capacity or cache)
  std::string scheme;
  double serving_ratio = 0.0;
  double average_distance_km = 0.0;
  double replication_cost = 0.0;
  double cdn_server_load = 0.0;
};

struct SweepConfig {
  std::vector<double> swept_fractions;
  /// The non-swept dimension, held fixed.
  double fixed_fraction = 0.0;
  SimulationConfig simulation;
};

/// Fig. 6: sweep service capacity, cache fixed (paper: capacity 2%–7%,
/// cache 3%).
[[nodiscard]] std::vector<SweepPoint> run_capacity_sweep(
    const World& world, std::span<const Request> requests,
    const std::vector<NamedSchemeFactory>& schemes, const SweepConfig& config);

/// Fig. 7: sweep cache size, capacity fixed (paper: cache 0.5%–5%,
/// capacity 5%).
[[nodiscard]] std::vector<SweepPoint> run_cache_sweep(
    const World& world, std::span<const Request> requests,
    const std::vector<NamedSchemeFactory>& schemes, const SweepConfig& config);

/// Write sweep points as CSV (parameter, scheme, four metrics) — ready to
/// plot against the paper's figures.
void write_sweep_csv(std::ostream& out, const std::vector<SweepPoint>& points);

/// One simulation at explicit capacity/cache fractions.
[[nodiscard]] SweepPoint run_single(const World& world,
                                    std::span<const Request> requests,
                                    const NamedSchemeFactory& scheme,
                                    double service_fraction,
                                    double cache_fraction,
                                    const SimulationConfig& simulation);

}  // namespace ccdn
