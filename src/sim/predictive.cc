#include "sim/predictive.h"

#include "model/timeslots.h"
#include "util/error.h"

namespace ccdn {

SimulationReport run_predictive(const std::vector<Hotspot>& hotspots,
                                VideoCatalog catalog,
                                RedirectionScheme& scheme,
                                const Forecaster& forecaster,
                                std::span<const Request> requests,
                                const PredictiveConfig& config) {
  CCDN_REQUIRE(!hotspots.empty(), "no hotspots");
  CCDN_REQUIRE(catalog.num_videos > 0, "empty catalog");

  std::vector<GeoPoint> locations;
  locations.reserve(hotspots.size());
  for (const auto& h : hotspots) locations.push_back(h.location);
  const GridIndex index(std::move(locations), 0.5);
  const SchemeContext context{hotspots, index, catalog,
                              config.simulation.cdn_distance_km};

  DemandPredictor predictor(hotspots.size(), forecaster,
                            config.history_window);
  SimulationReport report(catalog.num_videos,
                          config.simulation.cdn_distance_km);
  const auto slots =
      partition_into_slots(requests, config.simulation.slot_seconds);
  std::vector<std::vector<VideoId>> previous_placements;
  for (const SlotRange& range : slots) {
    const auto slot_requests = requests.subspan(range.begin, range.size());
    const SlotDemand actual(slot_requests, index);
    const bool warm = predictor.slots_observed() >= config.warmup_slots;
    const SlotDemand planning =
        warm ? predictor.predict_for(actual) : actual;
    SlotPlan plan =
        scheme.plan_slot(context, slot_requests, warm ? planning : actual);
    std::vector<std::uint32_t> served_at;
    SlotMetrics metrics = admit_slot(
        hotspots, plan, slot_requests, config.simulation.cdn_distance_km,
        config.simulation.record_hotspot_loads ? &served_at : nullptr);
    if (config.simulation.charge_placement_deltas) {
      metrics.replicas =
          count_new_replicas(previous_placements, plan.placements);
      previous_placements = std::move(plan.placements);
    }
    report.add_slot(metrics, std::move(served_at));
    predictor.observe(actual);
  }
  return report;
}

}  // namespace ccdn
