// Trace-driven simulator (paper §V).
//
// Drives a RedirectionScheme over a session trace, slot by slot, and
// *admits* each plan under the physical constraints: a request assigned to
// hotspot j is served only if j has the video placed and service capacity
// left this slot; everything else falls back to the origin CDN server at
// the 20 km distance penalty. The four reported metrics are exactly the
// paper's (§V-A): hotspot serving ratio, average content access distance,
// content replication cost, and CDN server load.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/scheme.h"
#include "model/timeslots.h"
#include "model/types.h"
#include "trace/slot_source.h"
#include "verify/audit.h"

namespace ccdn {

struct SimulationConfig {
  /// Slot length; the paper's joint decision granularity. One slot covering
  /// the whole trace reproduces the single-epoch §V setup; 3600 s gives the
  /// hourly view used by the measurement study.
  std::int64_t slot_seconds = 24 * 3600;
  double cdn_distance_km = kCdnDistanceKm;
  /// Record per-slot per-hotspot served load (needed by the correlation
  /// analysis; off by default to keep reports small).
  bool record_hotspot_loads = false;
  /// Charge replication for placement *deltas* between consecutive slots
  /// (hotspot caches persist; only newly pushed videos cost origin
  /// traffic). Single-slot runs are unaffected. Disable to re-charge the
  /// full placement every slot.
  bool charge_placement_deltas = true;
  /// Device churn: each hotspot is independently offline for a whole slot
  /// with this probability. Crowdsourced devices are user hardware — they
  /// reboot, lose uplink, get unplugged. The scheduler plans *unaware*
  /// (liveness is only discovered when a redirected request fails), which
  /// is the pessimistic deployment case. 0 disables churn.
  double offline_probability = 0.0;
  std::uint64_t churn_seed = 4242;
  /// Worker threads for the slot-scheduling pipeline. 1 (default) runs the
  /// classic sequential loop; 0 means "use all hardware threads". With N > 1
  /// independent slots are planned and admitted concurrently on a fixed
  /// thread pool and reduced back in slot order, so the report is
  /// bit-identical to the sequential run (churn masks are pre-drawn
  /// sequentially; placement deltas are charged in the ordered reduction).
  /// Schemes with cross-slot state (clone() == nullptr, e.g. Random) fall
  /// back to the sequential path regardless of this setting.
  std::size_t num_threads = 1;
  /// Bounded planning window for the pipelined executor: at most this many
  /// slot batches are resident/in flight at once, and slot k+W may not
  /// start until slot k's ordered reduction has retired (backpressure, not
  /// barriers). 0 means "2x the worker threads". Both run() overloads use
  /// the same executor, so peak memory is O(window x slot size) even for
  /// the streaming SlotSource path; the window size never changes results
  /// (bit-identical reports and digests at any window and thread count).
  std::size_t max_inflight_slots = 0;
  /// Audit every slot plan before admission: assignment totality/range and
  /// placement shape (count, order, cache capacity). These are the
  /// invariants *every* scheme owes the simulator; scheme-specific
  /// guarantees (capacity feasibility, B_peak) are audited inside the
  /// schemes via their own audit knobs. Violations throw InvariantError.
  /// The checks are compiled out under NDEBUG, but at any level != kOff the
  /// report additionally records a per-slot FNV digest of (assignment,
  /// placements) in every build — see SimulationReport::slot_digests().
  AuditLevel audit_level = AuditLevel::kOff;
  /// Replay every slot on a fresh scheme clone and require the replayed
  /// plan's digest to match — the oracle that cross-slot carried state
  /// (the online scheduler's patched scaffolds, carried potentials, the
  /// candidate cache) is a pure accelerator and never leaks into plans.
  /// Doubles the planning work; off by default, meant for tests and the
  /// differential suites. Schemes without clone() are skipped.
  bool verify_clone_purity = false;
  /// Zone-sharded planning (DESIGN.md §3.12), forwarded to the schemes via
  /// SchemeContext::num_shards. 0 = unsharded; 1 = sharded orchestration
  /// with one shard (bit-identical to unsharded); >= 2 = real sharding.
  /// Schemes without a sharded path ignore it, and a scheme's own
  /// num_shards config overrides it.
  std::size_t num_shards = 0;
};

struct SlotMetrics {
  std::size_t requests = 0;
  std::size_t served = 0;
  std::size_t rejected_capacity = 0;   // assigned but hotspot was full
  std::size_t rejected_placement = 0;  // assigned but video not cached
  std::size_t rejected_offline = 0;    // assigned but hotspot was down
  std::size_t sent_to_cdn = 0;         // scheme assigned the CDN directly
  std::size_t replicas = 0;
  double distance_sum_km = 0.0;
};

class SimulationReport {
 public:
  SimulationReport(std::uint32_t num_videos, double cdn_distance_km)
      : num_videos_(num_videos), cdn_distance_km_(cdn_distance_km) {}

  void add_slot(SlotMetrics metrics,
                std::vector<std::uint32_t> hotspot_loads = {},
                StageTimings timings = {},
                std::optional<std::uint64_t> digest = std::nullopt);

  [[nodiscard]] std::size_t total_requests() const noexcept { return requests_; }
  [[nodiscard]] std::size_t served_by_hotspots() const noexcept {
    return served_;
  }
  [[nodiscard]] std::size_t total_replicas() const noexcept { return replicas_; }

  /// Fraction of requests served by hotspots.
  [[nodiscard]] double serving_ratio() const noexcept;
  /// Mean request→server distance in km (CDN counted at the penalty).
  [[nodiscard]] double average_distance_km() const noexcept;
  /// Replicas pushed to hotspots, normalized by the video-set size.
  [[nodiscard]] double replication_cost() const noexcept;
  /// (unserved + replicas) / total requests — the paper's combined metric.
  [[nodiscard]] double cdn_server_load() const noexcept;

  [[nodiscard]] const std::vector<SlotMetrics>& slots() const noexcept {
    return slots_;
  }
  /// Per-slot per-hotspot served load (empty unless recording was enabled).
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>& hotspot_loads()
      const noexcept {
    return hotspot_loads_;
  }
  /// Per-slot stage timing breakdown (parallel to slots()). Wall-clock
  /// measurements — the only report field that is *not* deterministic
  /// across runs or thread counts.
  [[nodiscard]] const std::vector<StageTimings>& stage_timings()
      const noexcept {
    return stage_timings_;
  }
  /// Sum of the per-slot stage timings.
  [[nodiscard]] StageTimings total_stage_timings() const noexcept;
  /// Per-slot FNV digest of (assignment, placements), parallel to slots().
  /// Empty unless SimulationConfig::audit_level != kOff. Deterministic
  /// across runs and thread counts, so two runs of the same scheme can be
  /// cross-checked slot by slot without retaining the plans themselves.
  [[nodiscard]] const std::vector<std::uint64_t>& slot_digests()
      const noexcept {
    return slot_digests_;
  }

 private:
  std::uint32_t num_videos_;
  double cdn_distance_km_;
  std::size_t requests_ = 0;
  std::size_t served_ = 0;
  std::size_t replicas_ = 0;
  double distance_sum_km_ = 0.0;
  std::vector<SlotMetrics> slots_;
  std::vector<std::vector<std::uint32_t>> hotspot_loads_;
  std::vector<StageTimings> stage_timings_;
  std::vector<std::uint64_t> slot_digests_;
};

/// Admit one slot's plan against the physical constraints (placement must
/// cover the video; per-slot service capacity). Requests the plan cannot
/// serve are charged the CDN distance. When `served_loads` is non-null it
/// receives the per-hotspot served request counts.
/// `available`, when non-empty, marks which hotspots are online this slot
/// (nonzero = up); assignments to offline hotspots are rejected to the CDN.
[[nodiscard]] SlotMetrics admit_slot(
    const std::vector<Hotspot>& hotspots, const SlotPlan& plan,
    std::span<const Request> requests, double cdn_distance_km,
    std::vector<std::uint32_t>* served_loads = nullptr,
    std::span<const std::uint8_t> available = {});

class Simulator {
 public:
  /// `hotspots` must have capacities assigned; `requests` sorted by time.
  Simulator(std::vector<Hotspot> hotspots, VideoCatalog catalog,
            SimulationConfig config = {});

  /// Run a scheme over the whole trace (delegates to the streaming
  /// executor through a VectorSlotSource, so both overloads share one
  /// pipeline and produce identical reports on equal traces).
  [[nodiscard]] SimulationReport run(RedirectionScheme& scheme,
                                     std::span<const Request> requests) const;

  /// Run a scheme over a slot stream in bounded memory: at most
  /// config().max_inflight_slots batches are ever resident. Churn masks
  /// are drawn in slot order as batches are pulled and placement deltas
  /// are charged in the ordered reduction, so the report and per-slot
  /// digests are bit-identical to the in-memory run on the equivalent
  /// materialized trace, at any thread count and window size. Schemes
  /// without clone() are planned sequentially on the pulling thread
  /// (still bounded: one batch resident).
  [[nodiscard]] SimulationReport run(RedirectionScheme& scheme,
                                     SlotSource& source) const;

  [[nodiscard]] const std::vector<Hotspot>& hotspots() const noexcept {
    return hotspots_;
  }
  [[nodiscard]] const GridIndex& hotspot_index() const noexcept {
    return index_;
  }
  [[nodiscard]] const SimulationConfig& config() const noexcept {
    return config_;
  }

 private:
  std::vector<Hotspot> hotspots_;
  VideoCatalog catalog_;
  SimulationConfig config_;
  GridIndex index_;
};

}  // namespace ccdn
