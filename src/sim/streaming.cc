#include "sim/streaming.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "geo/geo_point.h"
#include "model/timeslots.h"
#include "util/error.h"

namespace ccdn {

std::vector<Session> attach_durations(std::span<const Request> requests,
                                      double median_minutes, double sigma,
                                      std::uint64_t seed) {
  CCDN_REQUIRE(median_minutes > 0.0, "non-positive median duration");
  CCDN_REQUIRE(sigma >= 0.0, "negative sigma");
  Rng rng(seed);
  std::vector<Session> sessions;
  sessions.reserve(requests.size());
  const double mu = std::log(median_minutes * 60.0);
  for (const Request& request : requests) {
    Session session;
    session.request = request;
    const double seconds = std::exp(rng.normal(mu, sigma));
    session.duration_seconds = static_cast<std::int64_t>(
        std::clamp(seconds, 30.0, 4.0 * 3600.0));
    sessions.push_back(session);
  }
  return sessions;
}

StreamingReport run_streaming(const std::vector<Hotspot>& hotspots,
                              VideoCatalog catalog, RedirectionScheme& scheme,
                              std::span<const Session> sessions,
                              const StreamingConfig& config) {
  CCDN_REQUIRE(!hotspots.empty(), "no hotspots");
  CCDN_REQUIRE(catalog.num_videos > 0, "empty catalog");
  CCDN_REQUIRE(config.slot_seconds > 0, "non-positive slot length");
  CCDN_REQUIRE(config.concurrency_factor > 0.0,
               "non-positive concurrency factor");

  std::vector<GeoPoint> locations;
  locations.reserve(hotspots.size());
  for (const auto& h : hotspots) locations.push_back(h.location);
  const GridIndex index(std::move(locations), 0.5);
  const SchemeContext context{hotspots, index, catalog,
                              config.cdn_distance_km};

  // Stream budget per hotspot.
  std::vector<std::size_t> stream_limit(hotspots.size());
  for (std::size_t h = 0; h < hotspots.size(); ++h) {
    stream_limit[h] = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(config.concurrency_factor *
                            static_cast<double>(
                                hotspots[h].service_capacity))));
  }
  // Active sessions per hotspot: min-heaps of end times.
  std::vector<std::priority_queue<std::int64_t, std::vector<std::int64_t>,
                                  std::greater<>>>
      active(hotspots.size());

  // The planning layer works on plain requests.
  std::vector<Request> requests;
  requests.reserve(sessions.size());
  for (const auto& session : sessions) requests.push_back(session.request);
  CCDN_REQUIRE(std::is_sorted(requests.begin(), requests.end(),
                              [](const Request& a, const Request& b) {
                                return a.timestamp < b.timestamp;
                              }),
               "sessions must be sorted by start time");

  StreamingReport report;
  report.num_videos = catalog.num_videos;
  report.total_sessions = sessions.size();

  const auto slots = partition_into_slots(requests, config.slot_seconds);
  std::vector<std::vector<VideoId>> previous_placements;
  for (const SlotRange& range : slots) {
    const std::span<const Request> slot_requests(
        requests.data() + range.begin, range.size());
    const SlotDemand demand(slot_requests, index);
    SlotPlan plan = scheme.plan_slot(context, slot_requests, demand);
    CCDN_ENSURE(plan.assignment.size() == range.size(),
                "plan assignment length mismatch");
    CCDN_ENSURE(plan.respects_caches(hotspots),
                "scheme exceeded cache capacities");
    report.replicas +=
        config.charge_placement_deltas
            ? count_new_replicas(previous_placements, plan.placements)
            : plan.total_replicas();
    if (config.charge_placement_deltas) {
      previous_placements = plan.placements;
    }

    for (std::size_t offset = 0; offset < range.size(); ++offset) {
      const Session& session = sessions[range.begin + offset];
      const HotspotIndex target = plan.assignment[offset];
      bool served = false;
      if (target != kCdnServer) {
        const auto& cached = plan.placements[target];
        if (!std::binary_search(cached.begin(), cached.end(),
                                session.request.video)) {
          ++report.rejected_placement;
        } else {
          auto& streams = active[target];
          while (!streams.empty() &&
                 streams.top() <= session.request.timestamp) {
            streams.pop();
          }
          if (streams.size() < stream_limit[target]) {
            streams.push(session.request.timestamp +
                         session.duration_seconds);
            report.peak_concurrency =
                std::max(report.peak_concurrency, streams.size());
            served = true;
            ++report.served_sessions;
            report.distance_sum_km += distance_km(
                session.request.location, hotspots[target].location);
          } else {
            ++report.rejected_busy;
          }
        }
      }
      if (!served) report.distance_sum_km += config.cdn_distance_km;
    }
  }
  return report;
}

}  // namespace ccdn
