#include "sim/reactive.h"

#include "geo/geo_point.h"
#include "model/timeslots.h"
#include "util/error.h"

namespace ccdn {

SimulationReport run_reactive(const std::vector<Hotspot>& hotspots,
                              VideoCatalog catalog,
                              std::span<const Request> requests,
                              const ReactiveConfig& config) {
  CCDN_REQUIRE(!hotspots.empty(), "no hotspots");
  CCDN_REQUIRE(catalog.num_videos > 0, "empty catalog");

  std::vector<GeoPoint> locations;
  locations.reserve(hotspots.size());
  for (const auto& h : hotspots) locations.push_back(h.location);
  const GridIndex index(std::move(locations), 0.5);

  std::vector<VideoCachePtr> caches;
  caches.reserve(hotspots.size());
  for (const auto& hotspot : hotspots) {
    caches.push_back(make_cache(
        config.policy, std::max<std::size_t>(1, hotspot.cache_capacity)));
  }

  SimulationReport report(catalog.num_videos,
                          config.simulation.cdn_distance_km);
  const auto slots =
      partition_into_slots(requests, config.simulation.slot_seconds);
  std::vector<std::uint32_t> capacity_left(hotspots.size());

  for (const SlotRange& range : slots) {
    SlotMetrics metrics;
    metrics.requests = range.size();
    for (std::size_t h = 0; h < hotspots.size(); ++h) {
      capacity_left[h] = hotspots[h].service_capacity;
    }
    std::vector<std::uint32_t> served_at;
    if (config.simulation.record_hotspot_loads) {
      served_at.assign(hotspots.size(), 0);
    }

    for (std::size_t r = range.begin; r < range.end; ++r) {
      const Request& request = requests[r];
      const auto home =
          static_cast<HotspotIndex>(index.nearest(request.location));
      bool hit = caches[home]->access(request.video);
      if (!hit) {
        // Fetch on miss: one unit of origin replication traffic.
        (void)caches[home]->insert(request.video);
        ++metrics.replicas;
        hit = config.serve_on_fetch;
        if (!hit) ++metrics.rejected_placement;
      }
      bool served = false;
      if (hit) {
        if (capacity_left[home] > 0) {
          --capacity_left[home];
          served = true;
          ++metrics.served;
          metrics.distance_sum_km +=
              distance_km(request.location, hotspots[home].location);
          if (config.simulation.record_hotspot_loads) ++served_at[home];
        } else {
          ++metrics.rejected_capacity;
        }
      }
      if (!served) {
        metrics.distance_sum_km += config.simulation.cdn_distance_km;
      }
    }
    report.add_slot(metrics, std::move(served_at));
  }
  return report;
}

}  // namespace ccdn
