#include "sim/simulator.h"

#include <algorithm>
#include <deque>
#include <future>
#include <utility>

#include "geo/geo_point.h"
#include "util/rng.h"
#include "util/error.h"
#include "util/mutex.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "verify/schedule_audit.h"

namespace ccdn {

void SimulationReport::add_slot(SlotMetrics metrics,
                                std::vector<std::uint32_t> hotspot_loads,
                                StageTimings timings,
                                std::optional<std::uint64_t> digest) {
  requests_ += metrics.requests;
  served_ += metrics.served;
  replicas_ += metrics.replicas;
  distance_sum_km_ += metrics.distance_sum_km;
  slots_.push_back(metrics);
  stage_timings_.push_back(timings);
  if (!hotspot_loads.empty()) {
    hotspot_loads_.push_back(std::move(hotspot_loads));
  }
  if (digest.has_value()) slot_digests_.push_back(*digest);
}

StageTimings SimulationReport::total_stage_timings() const noexcept {
  StageTimings total;
  for (const auto& t : stage_timings_) total += t;
  return total;
}

double SimulationReport::serving_ratio() const noexcept {
  return requests_ == 0
             ? 0.0
             : static_cast<double>(served_) / static_cast<double>(requests_);
}

double SimulationReport::average_distance_km() const noexcept {
  return requests_ == 0 ? 0.0
                        : distance_sum_km_ / static_cast<double>(requests_);
}

double SimulationReport::replication_cost() const noexcept {
  return num_videos_ == 0 ? 0.0
                          : static_cast<double>(replicas_) /
                                static_cast<double>(num_videos_);
}

double SimulationReport::cdn_server_load() const noexcept {
  if (requests_ == 0) return 0.0;
  const double unserved = static_cast<double>(requests_ - served_);
  return (unserved + static_cast<double>(replicas_)) /
         static_cast<double>(requests_);
}

Simulator::Simulator(std::vector<Hotspot> hotspots, VideoCatalog catalog,
                     SimulationConfig config)
    : hotspots_(std::move(hotspots)),
      catalog_(catalog),
      config_(config),
      index_(
          [&] {
            CCDN_REQUIRE(!hotspots_.empty(), "no hotspots");
            std::vector<GeoPoint> locations;
            locations.reserve(hotspots_.size());
            for (const auto& h : hotspots_) locations.push_back(h.location);
            return locations;
          }(),
          /*cell_km=*/0.5) {
  CCDN_REQUIRE(config_.slot_seconds > 0, "non-positive slot length");
  CCDN_REQUIRE(catalog_.num_videos > 0, "empty catalog");
}

SlotMetrics admit_slot(const std::vector<Hotspot>& hotspots,
                       const SlotPlan& plan,
                       std::span<const Request> requests,
                       double cdn_distance_km,
                       std::vector<std::uint32_t>* served_loads,
                       std::span<const std::uint8_t> available) {
  CCDN_ENSURE(plan.assignment.size() == requests.size(),
              "plan assignment length mismatch");
  CCDN_ENSURE(plan.respects_caches(hotspots),
              "scheme exceeded cache capacities");
  CCDN_REQUIRE(available.empty() || available.size() == hotspots.size(),
               "availability mask length mismatch");

  SlotMetrics metrics;
  metrics.requests = requests.size();
  metrics.replicas = plan.total_replicas();
  std::vector<std::uint32_t> capacity_left(hotspots.size());
  for (std::size_t h = 0; h < hotspots.size(); ++h) {
    capacity_left[h] = hotspots[h].service_capacity;
  }
  if (served_loads != nullptr) served_loads->assign(hotspots.size(), 0);

  for (std::size_t r = 0; r < requests.size(); ++r) {
    const HotspotIndex target = plan.assignment[r];
    bool served = false;
    if (target != kCdnServer) {
      CCDN_ENSURE(target < hotspots.size(), "assignment out of range");
      const auto& cached = plan.placements[target];
      if (!available.empty() && available[target] == 0) {
        ++metrics.rejected_offline;
      } else if (!std::binary_search(cached.begin(), cached.end(),
                              requests[r].video)) {
        ++metrics.rejected_placement;
      } else if (capacity_left[target] == 0) {
        ++metrics.rejected_capacity;
      } else {
        --capacity_left[target];
        served = true;
        metrics.distance_sum_km +=
            distance_km(requests[r].location, hotspots[target].location);
        ++metrics.served;
        if (served_loads != nullptr) ++(*served_loads)[target];
      }
    } else {
      ++metrics.sent_to_cdn;
    }
    if (!served) metrics.distance_sum_km += cdn_distance_km;
  }
  return metrics;
}

namespace {

/// Everything one slot produces before the ordered reduction.
struct SlotResult {
  SlotPlan plan;
  SlotMetrics metrics;
  std::vector<std::uint32_t> served_at;
  StageTimings timings;
  std::optional<std::uint64_t> digest;
};

/// Plan + admit one slot. Pure in (scheme state, slot inputs), so distinct
/// slots may run concurrently as long as each invocation owns its scheme
/// instance. Shared verbatim by both run() overloads — this is what makes
/// streaming results bit-identical to in-memory ones.
SlotResult process_slot(const SimulationConfig& config,
                        const SchemeContext& context,
                        const std::vector<Hotspot>& hotspots,
                        const GridIndex& index, RedirectionScheme& slot_scheme,
                        std::span<const Request> slot_requests,
                        std::span<const std::uint8_t> availability) {
  SlotResult result;
  Stopwatch clock;
  const SlotDemand demand(slot_requests, index);
  result.timings.demand_s = clock.elapsed_seconds();
  result.plan = slot_scheme.plan_slot(context, slot_requests, demand);
  if (config.audit_level != AuditLevel::kOff) {
    // Scheme-agnostic plan audit: totality, range, placement shape.
    // Capacity feasibility is a per-scheme guarantee (Nearest/Random
    // over-assign by design and rely on admission), so it is audited
    // inside the schemes that promise it, not here.
    if constexpr (kCheckedBuild) {
      AuditReport audit;
      audit_assignment(result.plan.assignment, slot_requests.size(),
                       hotspots.size(), audit);
      audit_placements(result.plan.placements, hotspots, audit);
      audit.require_clean("simulator slot plan");
    }
    result.digest = plan_digest(result.plan);
  }
  if (config.verify_clone_purity) {
    // A fresh clone holds no cross-slot state (no patched scaffold, no
    // carried potentials, no candidate cache), so replaying the slot on it
    // exercises the rebuild path; any digest difference means carried
    // state leaked into the plan.
    if (SchemePtr fresh = slot_scheme.clone()) {
      const SlotPlan replay = fresh->plan_slot(context, slot_requests, demand);
      CCDN_ENSURE(plan_digest(replay) == plan_digest(result.plan),
                  "slot plan depends on cross-slot scheme state");
    }
  }
  if (const StageTimings* plan_timings = slot_scheme.last_stage_timings()) {
    result.timings.partition_s = plan_timings->partition_s;
    result.timings.gc_build_s = plan_timings->gc_build_s;
    result.timings.graph_s = plan_timings->graph_s;
    result.timings.mcmf_s = plan_timings->mcmf_s;
    result.timings.replication_s = plan_timings->replication_s;
  }
  clock.reset();
  result.metrics = admit_slot(
      hotspots, result.plan, slot_requests, config.cdn_distance_km,
      config.record_hotspot_loads ? &result.served_at : nullptr, availability);
  result.timings.admit_s = clock.elapsed_seconds();
  return result;
}

}  // namespace

SimulationReport Simulator::run(RedirectionScheme& scheme,
                                std::span<const Request> requests) const {
  VectorSlotSource source(requests, config_.slot_seconds);
  return run(scheme, source);
}

SimulationReport Simulator::run(RedirectionScheme& scheme,
                                SlotSource& source) const {
  CCDN_REQUIRE(source.slot_seconds() == config_.slot_seconds,
               "slot source window differs from simulator slot length");
  CCDN_REQUIRE(config_.offline_probability >= 0.0 &&
                   config_.offline_probability < 1.0,
               "offline probability outside [0,1)");
  SimulationReport report(catalog_.num_videos, config_.cdn_distance_km);
  const SchemeContext context{hotspots_, index_, catalog_,
                              config_.cdn_distance_km, config_.num_shards};

  // Churn masks are drawn on the pulling thread in slot order, with the
  // same per-slot draw count no matter how slots are later scheduled
  // across threads, so availability matches the classic sequential loop
  // bit for bit.
  Rng churn_rng(config_.churn_seed);
  const bool churn = config_.offline_probability > 0.0;
  const auto draw_mask = [&] {
    std::vector<std::uint8_t> mask;
    if (!churn) return mask;
    mask.assign(hotspots_.size(), 1);
    for (std::size_t h = 0; h < hotspots_.size(); ++h) {
      if (churn_rng.chance(config_.offline_probability)) mask[h] = 0;
    }
    return mask;
  };

  // Placement-delta charging chains slot i to slot i-1, so it lives in this
  // ordered reduction over already-computed plans, not in the fan-out.
  std::vector<std::vector<VideoId>> previous_placements;
  const auto reduce_slot = [&](SlotResult result) {
    if (config_.charge_placement_deltas) {
      result.metrics.replicas =
          count_new_replicas(previous_placements, result.plan.placements);
      previous_placements = std::move(result.plan.placements);
    }
    report.add_slot(result.metrics, std::move(result.served_at),
                    result.timings, result.digest);
  };

  const std::size_t num_threads = config_.num_threads == 0
                                      ? ThreadPool::default_threads()
                                      : config_.num_threads;
  const std::size_t window = config_.max_inflight_slots == 0
                                 ? 2 * num_threads
                                 : config_.max_inflight_slots;

  if (num_threads > 1 && window > 1) {
    if (SchemePtr probe = scheme.clone()) {
      // Pipelined window executor: at most `window` slot batches are
      // resident/in flight; slot k+W is not even pulled from the source
      // until slot k's ordered reduction retired (backpressure). Each of
      // the W lanes owns one scheme clone that is recycled across window
      // generations (slots k, k+W, k+2W, ... reuse lane k%W), so per-slot
      // scratch — candidate-edge buffers, ThetaSweeper scaffolds — is
      // reallocated W times per run instead of once per slot. Lane reuse
      // is race-free because a lane's previous slot has always been
      // retired (its future consumed) before the lane is resubmitted; the
      // per-lane mutex makes that ownership handoff checkable (thread-
      // safety analysis and TSan both see the lock) and is uncontended by
      // construction, so it costs one atomic per slot.
      struct Lane {
        Mutex mu;
        SchemePtr clone CCDN_GUARDED_BY(mu);
        SlotBatch batch CCDN_GUARDED_BY(mu);
        std::vector<std::uint8_t> mask CCDN_GUARDED_BY(mu);
      };
      // Schemes running inside the lanes must not fork (see
      // SchemeContext::threaded_executor).
      SchemeContext lanes_context = context;
      lanes_context.threaded_executor = true;
      std::vector<Lane> lanes(window);
      {
        const MutexLock lock(lanes[0].mu);
        lanes[0].clone = std::move(probe);
      }
      for (std::size_t i = 1; i < window; ++i) {
        const MutexLock lock(lanes[i].mu);
        lanes[i].clone = scheme.clone();
      }
      ThreadPool pool(std::min(num_threads, window));
      std::deque<std::future<SlotResult>> inflight;
      std::size_t submitted = 0;
      bool exhausted = false;
      const auto pump = [&] {
        while (!exhausted && inflight.size() < window) {
          std::optional<SlotBatch> batch = source.next();
          if (!batch.has_value()) {
            exhausted = true;
            break;
          }
          CCDN_ENSURE(batch->slot_index == submitted,
                      "slot source emitted slots out of order");
          Lane& lane = lanes[submitted % window];
          {
            const MutexLock lock(lane.mu);
            lane.batch = std::move(*batch);
            lane.mask = draw_mask();
          }
          inflight.push_back(pool.submit([this, &lanes_context, &lane] {
            const MutexLock lock(lane.mu);
            return process_slot(config_, lanes_context, hotspots_, index_,
                                *lane.clone, lane.batch.requests, lane.mask);
          }));
          ++submitted;
        }
      };
      pump();
      while (!inflight.empty()) {
        reduce_slot(inflight.front().get());
        inflight.pop_front();
        pump();
      }
      return report;
    }
    // Stateful scheme: planning order is part of its semantics, so fall
    // through to the sequential path.
  }
  // Sequential path: one batch resident at a time.
  while (std::optional<SlotBatch> batch = source.next()) {
    const std::vector<std::uint8_t> mask = draw_mask();
    reduce_slot(process_slot(config_, context, hotspots_, index_, scheme,
                             batch->requests, mask));
  }
  return report;
}

}  // namespace ccdn
