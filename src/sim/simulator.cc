#include "sim/simulator.h"

#include <algorithm>
#include <future>
#include <utility>

#include "geo/geo_point.h"
#include "util/rng.h"
#include "util/error.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "verify/schedule_audit.h"

namespace ccdn {

void SimulationReport::add_slot(SlotMetrics metrics,
                                std::vector<std::uint32_t> hotspot_loads,
                                StageTimings timings,
                                std::optional<std::uint64_t> digest) {
  requests_ += metrics.requests;
  served_ += metrics.served;
  replicas_ += metrics.replicas;
  distance_sum_km_ += metrics.distance_sum_km;
  slots_.push_back(metrics);
  stage_timings_.push_back(timings);
  if (!hotspot_loads.empty()) {
    hotspot_loads_.push_back(std::move(hotspot_loads));
  }
  if (digest.has_value()) slot_digests_.push_back(*digest);
}

StageTimings SimulationReport::total_stage_timings() const noexcept {
  StageTimings total;
  for (const auto& t : stage_timings_) total += t;
  return total;
}

double SimulationReport::serving_ratio() const noexcept {
  return requests_ == 0
             ? 0.0
             : static_cast<double>(served_) / static_cast<double>(requests_);
}

double SimulationReport::average_distance_km() const noexcept {
  return requests_ == 0 ? 0.0
                        : distance_sum_km_ / static_cast<double>(requests_);
}

double SimulationReport::replication_cost() const noexcept {
  return num_videos_ == 0 ? 0.0
                          : static_cast<double>(replicas_) /
                                static_cast<double>(num_videos_);
}

double SimulationReport::cdn_server_load() const noexcept {
  if (requests_ == 0) return 0.0;
  const double unserved = static_cast<double>(requests_ - served_);
  return (unserved + static_cast<double>(replicas_)) /
         static_cast<double>(requests_);
}

Simulator::Simulator(std::vector<Hotspot> hotspots, VideoCatalog catalog,
                     SimulationConfig config)
    : hotspots_(std::move(hotspots)),
      catalog_(catalog),
      config_(config),
      index_(
          [&] {
            CCDN_REQUIRE(!hotspots_.empty(), "no hotspots");
            std::vector<GeoPoint> locations;
            locations.reserve(hotspots_.size());
            for (const auto& h : hotspots_) locations.push_back(h.location);
            return locations;
          }(),
          /*cell_km=*/0.5) {
  CCDN_REQUIRE(config_.slot_seconds > 0, "non-positive slot length");
  CCDN_REQUIRE(catalog_.num_videos > 0, "empty catalog");
}

SlotMetrics admit_slot(const std::vector<Hotspot>& hotspots,
                       const SlotPlan& plan,
                       std::span<const Request> requests,
                       double cdn_distance_km,
                       std::vector<std::uint32_t>* served_loads,
                       std::span<const std::uint8_t> available) {
  CCDN_ENSURE(plan.assignment.size() == requests.size(),
              "plan assignment length mismatch");
  CCDN_ENSURE(plan.respects_caches(hotspots),
              "scheme exceeded cache capacities");
  CCDN_REQUIRE(available.empty() || available.size() == hotspots.size(),
               "availability mask length mismatch");

  SlotMetrics metrics;
  metrics.requests = requests.size();
  metrics.replicas = plan.total_replicas();
  std::vector<std::uint32_t> capacity_left(hotspots.size());
  for (std::size_t h = 0; h < hotspots.size(); ++h) {
    capacity_left[h] = hotspots[h].service_capacity;
  }
  if (served_loads != nullptr) served_loads->assign(hotspots.size(), 0);

  for (std::size_t r = 0; r < requests.size(); ++r) {
    const HotspotIndex target = plan.assignment[r];
    bool served = false;
    if (target != kCdnServer) {
      CCDN_ENSURE(target < hotspots.size(), "assignment out of range");
      const auto& cached = plan.placements[target];
      if (!available.empty() && available[target] == 0) {
        ++metrics.rejected_offline;
      } else if (!std::binary_search(cached.begin(), cached.end(),
                              requests[r].video)) {
        ++metrics.rejected_placement;
      } else if (capacity_left[target] == 0) {
        ++metrics.rejected_capacity;
      } else {
        --capacity_left[target];
        served = true;
        metrics.distance_sum_km +=
            distance_km(requests[r].location, hotspots[target].location);
        ++metrics.served;
        if (served_loads != nullptr) ++(*served_loads)[target];
      }
    } else {
      ++metrics.sent_to_cdn;
    }
    if (!served) metrics.distance_sum_km += cdn_distance_km;
  }
  return metrics;
}

namespace {

/// Everything one slot produces before the ordered reduction.
struct SlotResult {
  SlotPlan plan;
  SlotMetrics metrics;
  std::vector<std::uint32_t> served_at;
  StageTimings timings;
  std::optional<std::uint64_t> digest;
};

}  // namespace

SimulationReport Simulator::run(RedirectionScheme& scheme,
                                std::span<const Request> requests) const {
  SimulationReport report(catalog_.num_videos, config_.cdn_distance_km);
  const std::vector<SlotRange> slots =
      partition_into_slots(requests, config_.slot_seconds);

  const SchemeContext context{hotspots_, index_, catalog_,
                              config_.cdn_distance_km};
  CCDN_REQUIRE(config_.offline_probability >= 0.0 &&
                   config_.offline_probability < 1.0,
               "offline probability outside [0,1)");

  // Churn masks are drawn sequentially up front, in the same slot order and
  // with the same per-slot draw count as the classic loop, so availability
  // is identical no matter how slots are later scheduled across threads.
  std::vector<std::vector<std::uint8_t>> availability(slots.size());
  if (config_.offline_probability > 0.0) {
    Rng churn_rng(config_.churn_seed);
    for (auto& mask : availability) {
      mask.assign(hotspots_.size(), 1);
      for (std::size_t h = 0; h < hotspots_.size(); ++h) {
        if (churn_rng.chance(config_.offline_probability)) mask[h] = 0;
      }
    }
  }

  // Plan + admit one slot. Safe to run concurrently for distinct slots as
  // long as each invocation gets its own scheme instance.
  const auto process_slot = [&](RedirectionScheme& slot_scheme,
                                std::size_t slot_index) {
    const SlotRange& range = slots[slot_index];
    const auto slot_requests = requests.subspan(range.begin, range.size());
    SlotResult result;
    Stopwatch clock;
    const SlotDemand demand(slot_requests, index_);
    result.timings.demand_s = clock.elapsed_seconds();
    result.plan = slot_scheme.plan_slot(context, slot_requests, demand);
    if (config_.audit_level != AuditLevel::kOff) {
      // Scheme-agnostic plan audit: totality, range, placement shape.
      // Capacity feasibility is a per-scheme guarantee (Nearest/Random
      // over-assign by design and rely on admission), so it is audited
      // inside the schemes that promise it, not here.
      if constexpr (kCheckedBuild) {
        AuditReport audit;
        audit_assignment(result.plan.assignment, slot_requests.size(),
                         hotspots_.size(), audit);
        audit_placements(result.plan.placements, hotspots_, audit);
        audit.require_clean("simulator slot plan");
      }
      result.digest = plan_digest(result.plan);
    }
    if (const StageTimings* plan_timings = slot_scheme.last_stage_timings()) {
      result.timings.partition_s = plan_timings->partition_s;
      result.timings.gc_build_s = plan_timings->gc_build_s;
      result.timings.graph_s = plan_timings->graph_s;
      result.timings.mcmf_s = plan_timings->mcmf_s;
      result.timings.replication_s = plan_timings->replication_s;
    }
    clock.reset();
    result.metrics = admit_slot(
        hotspots_, result.plan, slot_requests, config_.cdn_distance_km,
        config_.record_hotspot_loads ? &result.served_at : nullptr,
        availability.empty() ? std::span<const std::uint8_t>{}
                             : availability[slot_index]);
    result.timings.admit_s = clock.elapsed_seconds();
    return result;
  };

  // Placement-delta charging chains slot i to slot i-1, so it lives in this
  // ordered reduction over already-computed plans, not in the fan-out.
  std::vector<std::vector<VideoId>> previous_placements;
  const auto reduce_slot = [&](SlotResult result) {
    if (config_.charge_placement_deltas) {
      result.metrics.replicas =
          count_new_replicas(previous_placements, result.plan.placements);
      previous_placements = std::move(result.plan.placements);
    }
    report.add_slot(result.metrics, std::move(result.served_at),
                    result.timings, result.digest);
  };

  const std::size_t num_threads = config_.num_threads == 0
                                      ? ThreadPool::default_threads()
                                      : config_.num_threads;
  if (num_threads > 1 && slots.size() > 1) {
    if (SchemePtr probe = scheme.clone()) {
      // Parallel pipeline: every slot plans against its own clone; the
      // main thread consumes results in slot order.
      std::vector<std::future<SlotResult>> futures;
      futures.reserve(slots.size());
      std::vector<SchemePtr> clones;
      clones.reserve(slots.size());
      clones.push_back(std::move(probe));
      for (std::size_t i = 1; i < slots.size(); ++i) {
        clones.push_back(scheme.clone());
      }
      ThreadPool pool(std::min(num_threads, slots.size()));
      for (std::size_t i = 0; i < slots.size(); ++i) {
        futures.push_back(pool.submit([&process_slot, &clones, i] {
          return process_slot(*clones[i], i);
        }));
      }
      for (auto& future : futures) reduce_slot(future.get());
      return report;
    }
    // Stateful scheme: planning order is part of its semantics, so fall
    // through to the sequential path.
  }
  for (std::size_t i = 0; i < slots.size(); ++i) {
    reduce_slot(process_slot(scheme, i));
  }
  return report;
}

}  // namespace ccdn
