#include "sim/simulator.h"

#include <algorithm>

#include "geo/geo_point.h"
#include "util/rng.h"
#include "util/error.h"

namespace ccdn {

void SimulationReport::add_slot(SlotMetrics metrics,
                                std::vector<std::uint32_t> hotspot_loads) {
  requests_ += metrics.requests;
  served_ += metrics.served;
  replicas_ += metrics.replicas;
  distance_sum_km_ += metrics.distance_sum_km;
  slots_.push_back(metrics);
  if (!hotspot_loads.empty()) {
    hotspot_loads_.push_back(std::move(hotspot_loads));
  }
}

double SimulationReport::serving_ratio() const noexcept {
  return requests_ == 0
             ? 0.0
             : static_cast<double>(served_) / static_cast<double>(requests_);
}

double SimulationReport::average_distance_km() const noexcept {
  return requests_ == 0 ? 0.0
                        : distance_sum_km_ / static_cast<double>(requests_);
}

double SimulationReport::replication_cost() const noexcept {
  return num_videos_ == 0 ? 0.0
                          : static_cast<double>(replicas_) /
                                static_cast<double>(num_videos_);
}

double SimulationReport::cdn_server_load() const noexcept {
  if (requests_ == 0) return 0.0;
  const double unserved = static_cast<double>(requests_ - served_);
  return (unserved + static_cast<double>(replicas_)) /
         static_cast<double>(requests_);
}

Simulator::Simulator(std::vector<Hotspot> hotspots, VideoCatalog catalog,
                     SimulationConfig config)
    : hotspots_(std::move(hotspots)),
      catalog_(catalog),
      config_(config),
      index_(
          [&] {
            CCDN_REQUIRE(!hotspots_.empty(), "no hotspots");
            std::vector<GeoPoint> locations;
            locations.reserve(hotspots_.size());
            for (const auto& h : hotspots_) locations.push_back(h.location);
            return locations;
          }(),
          /*cell_km=*/0.5) {
  CCDN_REQUIRE(config_.slot_seconds > 0, "non-positive slot length");
  CCDN_REQUIRE(catalog_.num_videos > 0, "empty catalog");
}

SlotMetrics admit_slot(const std::vector<Hotspot>& hotspots,
                       const SlotPlan& plan,
                       std::span<const Request> requests,
                       double cdn_distance_km,
                       std::vector<std::uint32_t>* served_loads,
                       std::span<const std::uint8_t> available) {
  CCDN_ENSURE(plan.assignment.size() == requests.size(),
              "plan assignment length mismatch");
  CCDN_ENSURE(plan.respects_caches(hotspots),
              "scheme exceeded cache capacities");
  CCDN_REQUIRE(available.empty() || available.size() == hotspots.size(),
               "availability mask length mismatch");

  SlotMetrics metrics;
  metrics.requests = requests.size();
  metrics.replicas = plan.total_replicas();
  std::vector<std::uint32_t> capacity_left(hotspots.size());
  for (std::size_t h = 0; h < hotspots.size(); ++h) {
    capacity_left[h] = hotspots[h].service_capacity;
  }
  if (served_loads != nullptr) served_loads->assign(hotspots.size(), 0);

  for (std::size_t r = 0; r < requests.size(); ++r) {
    const HotspotIndex target = plan.assignment[r];
    bool served = false;
    if (target != kCdnServer) {
      CCDN_ENSURE(target < hotspots.size(), "assignment out of range");
      const auto& cached = plan.placements[target];
      if (!available.empty() && available[target] == 0) {
        ++metrics.rejected_offline;
      } else if (!std::binary_search(cached.begin(), cached.end(),
                              requests[r].video)) {
        ++metrics.rejected_placement;
      } else if (capacity_left[target] == 0) {
        ++metrics.rejected_capacity;
      } else {
        --capacity_left[target];
        served = true;
        metrics.distance_sum_km +=
            distance_km(requests[r].location, hotspots[target].location);
        ++metrics.served;
        if (served_loads != nullptr) ++(*served_loads)[target];
      }
    } else {
      ++metrics.sent_to_cdn;
    }
    if (!served) metrics.distance_sum_km += cdn_distance_km;
  }
  return metrics;
}

SimulationReport Simulator::run(RedirectionScheme& scheme,
                                std::span<const Request> requests) const {
  SimulationReport report(catalog_.num_videos, config_.cdn_distance_km);
  const std::vector<SlotRange> slots =
      partition_into_slots(requests, config_.slot_seconds);

  const SchemeContext context{hotspots_, index_, catalog_,
                              config_.cdn_distance_km};
  CCDN_REQUIRE(config_.offline_probability >= 0.0 &&
                   config_.offline_probability < 1.0,
               "offline probability outside [0,1)");
  Rng churn_rng(config_.churn_seed);
  std::vector<std::uint8_t> available;
  std::vector<std::vector<VideoId>> previous_placements;
  for (const SlotRange& range : slots) {
    const auto slot_requests = requests.subspan(range.begin, range.size());
    const SlotDemand demand(slot_requests, index_);
    SlotPlan plan = scheme.plan_slot(context, slot_requests, demand);
    std::span<const std::uint8_t> availability;
    if (config_.offline_probability > 0.0) {
      available.assign(hotspots_.size(), 1);
      for (std::size_t h = 0; h < hotspots_.size(); ++h) {
        if (churn_rng.chance(config_.offline_probability)) {
          available[h] = 0;
        }
      }
      availability = available;
    }
    std::vector<std::uint32_t> served_at;
    SlotMetrics metrics =
        admit_slot(hotspots_, plan, slot_requests, config_.cdn_distance_km,
                   config_.record_hotspot_loads ? &served_at : nullptr,
                   availability);
    if (config_.charge_placement_deltas) {
      metrics.replicas =
          count_new_replicas(previous_placements, plan.placements);
      previous_placements = std::move(plan.placements);
    }
    report.add_slot(metrics, std::move(served_at));
  }
  return report;
}

}  // namespace ccdn
