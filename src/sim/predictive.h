// Predictive scheduling pipeline.
//
// The plain Simulator plans each slot against its *observed* demand — an
// oracle. In deployment the scheduling server must prefetch before the slot
// starts, planning against *forecast* demand (paper §III assumption 4).
// run_predictive() drives that loop: plan slot t with the predictor's
// output, admit against the actual requests, then feed the observation back
// into the predictor. The gap to the oracle quantifies the price of
// prediction error.
#pragma once

#include <span>

#include "core/scheme.h"
#include "predict/demand_predictor.h"
#include "sim/simulator.h"

namespace ccdn {

struct PredictiveConfig {
  SimulationConfig simulation;
  /// Initial slots planned against observed demand while history builds up
  /// (an operator would bootstrap from yesterday's trace).
  std::size_t warmup_slots = 1;
  /// Slots of per-video history the predictor retains.
  std::size_t history_window = 24;
};

/// Run `scheme` over the trace, planning each post-warmup slot against the
/// forecaster's demand prediction instead of the observed demand.
[[nodiscard]] SimulationReport run_predictive(
    const std::vector<Hotspot>& hotspots, VideoCatalog catalog,
    RedirectionScheme& scheme, const Forecaster& forecaster,
    std::span<const Request> requests, const PredictiveConfig& config = {});

}  // namespace ccdn
