// Reactive cache-eviction policies.
//
// The paper's hotspots *prefetch* content chosen by the scheduler. The
// natural alternative a practitioner would reach for first is reactive
// caching: fetch on miss, evict by LRU/LFU/FIFO. This module provides those
// policies so the benchmark suite can quantify what centralized prefetching
// buys (it is also what the cited smartrouter measurements [7] compare
// against).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "model/types.h"

namespace ccdn {

/// A fixed-capacity video cache with a pluggable replacement policy.
/// All operations are O(1) (LRU/FIFO) or O(log n) (LFU).
class VideoCache {
 public:
  virtual ~VideoCache() = default;

  [[nodiscard]] virtual std::string policy_name() const = 0;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// True if the video is cached; counts as a reference for the policy.
  [[nodiscard]] virtual bool access(VideoId video) = 0;

  /// True if cached, without touching recency/frequency state.
  [[nodiscard]] virtual bool contains(VideoId video) const = 0;

  /// Insert after a miss; returns the evicted video, if any. Inserting a
  /// present video is a no-op (returns nullopt).
  virtual std::optional<VideoId> insert(VideoId video) = 0;

 protected:
  explicit VideoCache(std::size_t capacity);
  std::size_t capacity_;
};

using VideoCachePtr = std::unique_ptr<VideoCache>;

/// Least-recently-used.
class LruCache final : public VideoCache {
 public:
  explicit LruCache(std::size_t capacity) : VideoCache(capacity) {}
  [[nodiscard]] std::string policy_name() const override { return "LRU"; }
  [[nodiscard]] std::size_t size() const override { return map_.size(); }
  [[nodiscard]] bool access(VideoId video) override;
  [[nodiscard]] bool contains(VideoId video) const override;
  std::optional<VideoId> insert(VideoId video) override;

 private:
  std::list<VideoId> order_;  // front = most recent
  std::unordered_map<VideoId, std::list<VideoId>::iterator> map_;
};

/// First-in first-out (no recency update on hit).
class FifoCache final : public VideoCache {
 public:
  explicit FifoCache(std::size_t capacity) : VideoCache(capacity) {}
  [[nodiscard]] std::string policy_name() const override { return "FIFO"; }
  [[nodiscard]] std::size_t size() const override { return map_.size(); }
  [[nodiscard]] bool access(VideoId video) override;
  [[nodiscard]] bool contains(VideoId video) const override;
  std::optional<VideoId> insert(VideoId video) override;

 private:
  std::list<VideoId> order_;  // front = oldest
  std::unordered_map<VideoId, std::list<VideoId>::iterator> map_;
};

/// Least-frequently-used with LRU tie-breaking (classic O(1) LFU buckets).
class LfuCache final : public VideoCache {
 public:
  explicit LfuCache(std::size_t capacity) : VideoCache(capacity) {}
  [[nodiscard]] std::string policy_name() const override { return "LFU"; }
  [[nodiscard]] std::size_t size() const override { return entries_.size(); }
  [[nodiscard]] bool access(VideoId video) override;
  [[nodiscard]] bool contains(VideoId video) const override;
  std::optional<VideoId> insert(VideoId video) override;

 private:
  struct Entry {
    std::uint64_t frequency = 1;
    std::list<VideoId>::iterator position;  // within its frequency bucket
  };
  void bump(VideoId video, Entry& entry);

  std::unordered_map<VideoId, Entry> entries_;
  // frequency -> LRU list of videos at that frequency (front = most recent)
  std::unordered_map<std::uint64_t, std::list<VideoId>> buckets_;
  std::uint64_t min_frequency_ = 0;
};

enum class CachePolicy { kLru, kFifo, kLfu };

[[nodiscard]] VideoCachePtr make_cache(CachePolicy policy,
                                       std::size_t capacity);
[[nodiscard]] const char* cache_policy_name(CachePolicy policy) noexcept;

}  // namespace ccdn
