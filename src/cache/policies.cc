#include "cache/policies.h"

#include "util/error.h"

namespace ccdn {

VideoCache::VideoCache(std::size_t capacity) : capacity_(capacity) {
  CCDN_REQUIRE(capacity >= 1, "cache capacity must be positive");
}

// --- LRU ---

bool LruCache::access(VideoId video) {
  const auto it = map_.find(video);
  if (it == map_.end()) return false;
  order_.splice(order_.begin(), order_, it->second);
  return true;
}

bool LruCache::contains(VideoId video) const { return map_.count(video) > 0; }

std::optional<VideoId> LruCache::insert(VideoId video) {
  if (map_.count(video)) return std::nullopt;
  std::optional<VideoId> evicted;
  if (map_.size() == capacity_) {
    evicted = order_.back();
    map_.erase(order_.back());
    order_.pop_back();
  }
  order_.push_front(video);
  map_[video] = order_.begin();
  return evicted;
}

// --- FIFO ---

bool FifoCache::access(VideoId video) { return map_.count(video) > 0; }

bool FifoCache::contains(VideoId video) const {
  return map_.count(video) > 0;
}

std::optional<VideoId> FifoCache::insert(VideoId video) {
  if (map_.count(video)) return std::nullopt;
  std::optional<VideoId> evicted;
  if (map_.size() == capacity_) {
    evicted = order_.front();
    map_.erase(order_.front());
    order_.pop_front();
  }
  order_.push_back(video);
  map_[video] = std::prev(order_.end());
  return evicted;
}

// --- LFU ---

void LfuCache::bump(VideoId video, Entry& entry) {
  auto& old_bucket = buckets_[entry.frequency];
  old_bucket.erase(entry.position);
  if (old_bucket.empty()) {
    buckets_.erase(entry.frequency);
    if (min_frequency_ == entry.frequency) ++min_frequency_;
  }
  ++entry.frequency;
  auto& new_bucket = buckets_[entry.frequency];
  new_bucket.push_front(video);
  entry.position = new_bucket.begin();
}

bool LfuCache::access(VideoId video) {
  const auto it = entries_.find(video);
  if (it == entries_.end()) return false;
  bump(video, it->second);
  return true;
}

bool LfuCache::contains(VideoId video) const {
  return entries_.count(video) > 0;
}

std::optional<VideoId> LfuCache::insert(VideoId video) {
  if (entries_.count(video)) return std::nullopt;
  std::optional<VideoId> evicted;
  if (entries_.size() == capacity_) {
    auto& bucket = buckets_.at(min_frequency_);
    const VideoId victim = bucket.back();  // LRU within the min bucket
    bucket.pop_back();
    if (bucket.empty()) buckets_.erase(min_frequency_);
    entries_.erase(victim);
    evicted = victim;
  }
  auto& bucket = buckets_[1];
  bucket.push_front(video);
  entries_[video] = Entry{1, bucket.begin()};
  min_frequency_ = 1;
  return evicted;
}

// --- factory ---

VideoCachePtr make_cache(CachePolicy policy, std::size_t capacity) {
  switch (policy) {
    case CachePolicy::kLru: return std::make_unique<LruCache>(capacity);
    case CachePolicy::kFifo: return std::make_unique<FifoCache>(capacity);
    case CachePolicy::kLfu: return std::make_unique<LfuCache>(capacity);
  }
  throw PreconditionError("unknown cache policy");
}

const char* cache_policy_name(CachePolicy policy) noexcept {
  switch (policy) {
    case CachePolicy::kLru: return "LRU";
    case CachePolicy::kFifo: return "FIFO";
    case CachePolicy::kLfu: return "LFU";
  }
  return "?";
}

}  // namespace ccdn
