#include "flow/exchange.h"

#include <algorithm>
#include <limits>

#include "flow/network.h"
#include "util/error.h"

namespace ccdn {

ExchangeResult solve_exchange(std::span<const std::int64_t> supply,
                              std::span<const std::int64_t> demand,
                              std::span<const ExchangeArc> arcs,
                              McmfStrategy strategy) {
  ExchangeResult result;
  if (arcs.empty()) return result;

  // Distinct endpoint ids, ascending, so node numbering is independent of
  // arc order.
  std::vector<std::uint32_t> senders;
  std::vector<std::uint32_t> receivers;
  for (const ExchangeArc& arc : arcs) {
    CCDN_REQUIRE(arc.from < supply.size() && arc.to < demand.size(),
                 "exchange arc endpoint outside supply/demand span");
    CCDN_REQUIRE(arc.capacity > 0, "non-positive exchange arc capacity");
    senders.push_back(arc.from);
    receivers.push_back(arc.to);
  }
  const auto dedupe = [](std::vector<std::uint32_t>& ids) {
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  };
  dedupe(senders);
  dedupe(receivers);

  constexpr NodeId kUnmapped = std::numeric_limits<NodeId>::max();
  const std::size_t max_id =
      std::max(senders.back(), receivers.back()) + std::size_t{1};
  std::vector<NodeId> sender_node(max_id, kUnmapped);
  std::vector<NodeId> receiver_node(max_id, kUnmapped);

  FlowNetwork net(2 + senders.size() + receivers.size());
  const NodeId source = 0;
  const NodeId sink = 1;
  NodeId next = 2;
  for (const std::uint32_t s : senders) {
    sender_node[s] = next++;
    CCDN_REQUIRE(supply[s] > 0, "exchange sender without residual supply");
    (void)net.add_edge(source, sender_node[s], supply[s], 0.0);
  }
  for (const std::uint32_t r : receivers) {
    receiver_node[r] = next++;
    CCDN_REQUIRE(demand[r] > 0, "exchange receiver without residual demand");
    (void)net.add_edge(receiver_node[r], sink, demand[r], 0.0);
  }
  std::vector<EdgeId> arc_edge(arcs.size());
  for (std::size_t a = 0; a < arcs.size(); ++a) {
    arc_edge[a] = net.add_edge(sender_node[arcs[a].from],
                               receiver_node[arcs[a].to], arcs[a].capacity,
                               arcs[a].cost_km);
  }

  const McmfResult solved = MinCostMaxFlow::solve(net, source, sink, strategy);
  result.moved = solved.flow;
  result.cost_km = solved.cost;

  for (std::size_t a = 0; a < arcs.size(); ++a) {
    const std::int64_t amount = net.flow(arc_edge[a]);
    if (amount > 0) {
      result.flows.push_back({arcs[a].from, arcs[a].to, amount});
    }
  }
  // Merge parallel arcs per (from, to) pair and fix the order, mirroring
  // merge_flow_entries so downstream accounting sees one entry per pair.
  std::sort(result.flows.begin(), result.flows.end(),
            [](const ExchangeFlow& x, const ExchangeFlow& y) {
              if (x.from != y.from) return x.from < y.from;
              return x.to < y.to;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < result.flows.size(); ++i) {
    if (out > 0 && result.flows[out - 1].from == result.flows[i].from &&
        result.flows[out - 1].to == result.flows[i].to) {
      result.flows[out - 1].amount += result.flows[i].amount;
    } else {
      result.flows[out++] = result.flows[i];
    }
  }
  result.flows.resize(out);
  return result;
}

}  // namespace ccdn
