// Directed flow network with residual edges.
//
// RBCAer models request balancing as a min-cost max-flow problem between
// overloaded and under-utilized hotspots (paper §IV-A); this is the shared
// graph representation for the Dinic and MCMF solvers.
//
// The network is append-only, with three lifecycle helpers for callers that
// rebuild graphs in a hot loop (the θ sweep): reserve()/clear() to stop the
// per-build allocator churn, checkpoint()/truncate() to roll transient
// structure (per-θ guide nodes) back off a persistent scaffold, and
// freeze_residuals() to commit the current flows so later augmentation
// cannot reroute them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.h"

namespace ccdn {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

class FlowNetwork {
 public:
  /// Network with `num_nodes` nodes and no edges.
  explicit FlowNetwork(std::size_t num_nodes);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return heads_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edges_.size() / 2;
  }

  /// Append one node; returns its id.
  NodeId add_node();

  /// Add a directed edge with capacity and per-unit cost; the paired
  /// residual edge (capacity 0, cost -cost) is created automatically.
  /// Returns the forward edge id. Requires capacity >= 0.
  EdgeId add_edge(NodeId from, NodeId to, std::int64_t capacity, double cost);

  struct Edge {
    NodeId from = 0;
    NodeId to = 0;
    std::int64_t capacity = 0;  // residual capacity
    double cost = 0.0;
  };

  [[nodiscard]] const Edge& edge(EdgeId e) const;
  /// Flow currently pushed through a *forward* edge.
  [[nodiscard]] std::int64_t flow(EdgeId e) const;
  /// Original capacity of a forward edge.
  [[nodiscard]] std::int64_t original_capacity(EdgeId e) const;

  /// Edge ids (forward and residual) leaving a node.
  [[nodiscard]] std::span<const EdgeId> out_edges(NodeId node) const;

  /// Reset all flows to zero (restores capacities).
  void reset_flows() noexcept;

  /// Pre-allocate room for `nodes` nodes and `edges` forward edges, so a
  /// build loop of that size performs no further allocations.
  void reserve(std::size_t nodes, std::size_t edges);

  /// Reset to `num_nodes` isolated nodes, dropping every edge but keeping
  /// the allocated buffers (including per-node adjacency storage for the
  /// first `num_nodes` nodes) for reuse.
  void clear(std::size_t num_nodes);

  /// Structural snapshot for truncate().
  struct Checkpoint {
    std::size_t nodes = 0;
    std::size_t stored_edges = 0;  // internal count: forward + residual
  };
  [[nodiscard]] Checkpoint checkpoint() const noexcept {
    return {heads_.size(), edges_.size()};
  }

  /// Roll the network back to `cp`: every node and edge added after the
  /// checkpoint is removed. Flows on surviving edges are untouched — the
  /// residual state of the retained prefix is exactly what it was, which is
  /// what lets a θ sweep keep committed flow on a persistent scaffold while
  /// re-deriving transient structure each step.
  void truncate(const Checkpoint& cp);

  /// Re-arm a forward edge with a fresh capacity: residual capacity and the
  /// flow() baseline both become `cap`, the paired backward arc drops to
  /// zero, so the edge reads as unused. The cross-slot online patch uses
  /// this to re-cap a retained scaffold's source/sink arcs with the new
  /// slot's φ values instead of rebuilding the scaffold.
  void reset_edge(EdgeId e, std::int64_t cap);

  /// Zero the residual (backward) arc of every edge, freezing the current
  /// flows in place: committed flow can no longer be rerouted by later
  /// augmentation, and every remaining positive-capacity arc is a forward
  /// arc with non-negative cost (so zero node potentials become valid
  /// again; see DESIGN.md §3.7). flow() readings are unaffected and
  /// reset_flows() still restores the original capacities.
  void freeze_residuals() noexcept;

  /// Make the current capacities the new flow() baseline (zeroing every
  /// reading). The θ sweep's transient regime truncates its pair arcs
  /// each step and re-solves from zero on the frozen scaffold, so without
  /// a rebase the scaffold arcs report cumulative multi-step flow while
  /// the freshly appended pair arcs report only the current step's — a
  /// storage-walking conservation audit would see phantom imbalance at
  /// every drained endpoint. After a rebase, flow() measures the new
  /// epoch only. Note reset_flows() restores to the rebased baseline.
  void rebase_flows() noexcept;

  /// Remove arcs whose pair is dead — zero residual in both directions —
  /// from the adjacency lists, so searches stop scanning them. Only sound
  /// after freeze_residuals(): with the backward arc permanently zero, the
  /// forward residual can never grow back. Edge storage and ids are
  /// untouched (flow() and edge() keep working); only out_edges() shrinks.
  /// Relative order inside each adjacency list is preserved, so a later
  /// truncate() still pops the transient tail correctly.
  void drop_dead_arcs() noexcept;

  /// Remove every arc with id >= `first` from the adjacency lists, keeping
  /// edge storage (ids, flow() readings) intact. Used by the θ sweep after
  /// a step commits: exhaustion proved every surviving pair arc unusable —
  /// its residual is zero or an endpoint's slack is — and slack never
  /// grows within a slot, so the next step only needs the scaffold plus
  /// its own arrivals.
  void drop_arcs_at_or_after(EdgeId first) noexcept;

  /// Remove arcs that can never lie on a source→sink path — arcs entering
  /// `source` and arcs leaving `sink` — from the adjacency lists. An
  /// augmenting path visits the source first and the sink last, so such
  /// arcs would close a cycle; dropping them also turns nodes whose only
  /// remaining arcs pointed back at the source into searchable dead ends.
  void drop_terminal_arcs(NodeId source, NodeId sink) noexcept;

  /// Replace `node`'s adjacency list with exactly `arcs`. The caller
  /// asserts the omitted arcs cannot carry flow right now (their heads are
  /// dead ends); the θ sweep uses this to narrow the source to the current
  /// step's arrival senders. restore_arcs() undoes any drop/focus.
  void focus_out_edges(NodeId node, std::span<const EdgeId> arcs);

  /// Rebuild the adjacency lists of the first `cp.nodes` nodes from edge
  /// storage, restoring every arc with id < cp.stored_edges that the
  /// drop_*/focus_out_edges compactions removed. The result is exactly the
  /// adjacency a fresh build of those edges would produce (ids ascending
  /// per node). Arcs with id >= cp.stored_edges leaving those nodes are
  /// discarded — pair with truncate(cp) when later edges exist.
  void restore_arcs(const Checkpoint& cp);

  // --- solver interface (residual manipulation) ---
  [[nodiscard]] EdgeId paired(EdgeId e) const noexcept { return e ^ 1u; }
  void push(EdgeId e, std::int64_t amount);

 private:
  friend class Dinic;
  friend class MinCostMaxFlow;

  std::vector<Edge> edges_;                  // interleaved fwd/residual
  std::vector<std::int64_t> original_caps_;  // per stored edge
  std::vector<std::vector<EdgeId>> heads_;   // adjacency: node -> edge ids
};

}  // namespace ccdn
