// Directed flow network with residual edges.
//
// RBCAer models request balancing as a min-cost max-flow problem between
// overloaded and under-utilized hotspots (paper §IV-A); this is the shared
// graph representation for the Dinic and MCMF solvers.
//
// Storage is laid out for the solvers' inner loops (DESIGN.md §3.11):
//
//  - Edge fields live in parallel SoA arrays (to_/residual_/cost_/from_)
//    instead of an interleaved array of structs, so a relax loop touches
//    only the bytes it reads. The Edge struct survives as a by-value
//    compatibility snapshot for audits, decomposition, and tests.
//  - Adjacency is a CSR-style slice table: every node owns a contiguous
//    [begin, end) slice of one shared arc_ids_ pool (arc_pool_), with a
//    reserved capacity so per-node appends are a bump, not a per-node
//    heap allocation. Slices relocate with amortized doubling when they
//    outgrow their reservation, and clear() re-packs the pool tightly so
//    a rebuild-per-slot loop reuses the same bytes every slot.
//  - Costs can optionally be mirrored into a fixed-point int32 array
//    (set_cost_quantization) for the integer-cost MCMF engine; the double
//    costs remain the source of truth and the default solver path never
//    reads the mirror, which is what keeps default-path digests identical.
//
// The network is append-only, with three lifecycle helpers for callers that
// rebuild graphs in a hot loop (the θ sweep): reserve()/clear() to stop the
// per-build allocator churn, checkpoint()/truncate() to roll transient
// structure (per-θ guide nodes) back off a persistent scaffold, and
// freeze_residuals() to commit the current flows so later augmentation
// cannot reroute them.
//
// Building with -DCCDN_ADJACENCY_ORACLE=ON keeps the pre-CSR
// vector-of-vectors adjacency alive as a shadow copy and cross-checks every
// mutator against it (debug oracle; see tests/flow/network_test.cc for the
// always-on reference-model property test).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/error.h"

namespace ccdn {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

/// Default fixed-point scale for set_cost_quantization: 2^20 units per km
/// (~1 mm resolution). int32 bounds |cost| < 2048 km, far above the θ radii
/// and normalized guide costs the RBCAer graphs carry (DESIGN.md §3.11).
inline constexpr double kDefaultCostScale = 1048576.0;

class FlowNetwork {
 public:
  /// Network with `num_nodes` nodes and no edges.
  explicit FlowNetwork(std::size_t num_nodes);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return to_.size() / 2;
  }

  /// Append one node; returns its id.
  NodeId add_node();

  /// Add a directed edge with capacity and per-unit cost; the paired
  /// residual edge (capacity 0, cost -cost) is created automatically.
  /// Returns the forward edge id. Requires capacity >= 0.
  EdgeId add_edge(NodeId from, NodeId to, std::int64_t capacity, double cost);

  /// Value snapshot of one stored arc. The backing store is SoA; this
  /// struct is assembled on demand by edge() for readers that want all
  /// fields at once. 8-byte members first so the struct carries no padding.
  struct Edge {
    std::int64_t capacity = 0;  // residual capacity
    double cost = 0.0;
    NodeId from = 0;
    NodeId to = 0;
  };
  static_assert(sizeof(Edge) == 24 && alignof(Edge) == 8,
                "Edge snapshot must stay three words: 8-byte members lead so "
                "no interior padding appears");

  [[nodiscard]] Edge edge(EdgeId e) const {
    CCDN_REQUIRE(e < to_.size(), "edge id out of range");
    return {residual_[e], cost_[e], from_[e], to_[e]};
  }

  // --- SoA hot accessors (solver inner loops; debug-checked bounds) ---
  [[nodiscard]] NodeId arc_from(EdgeId e) const noexcept {
    CCDN_ASSERT(e < from_.size(), "edge id out of range");
    return from_[e];
  }
  [[nodiscard]] NodeId arc_to(EdgeId e) const noexcept {
    CCDN_ASSERT(e < to_.size(), "edge id out of range");
    return to_[e];
  }
  [[nodiscard]] std::int64_t residual(EdgeId e) const noexcept {
    CCDN_ASSERT(e < residual_.size(), "edge id out of range");
    return residual_[e];
  }
  [[nodiscard]] double cost(EdgeId e) const noexcept {
    CCDN_ASSERT(e < cost_.size(), "edge id out of range");
    return cost_[e];
  }
  /// Fixed-point cost mirror; valid only after set_cost_quantization().
  [[nodiscard]] std::int32_t qcost(EdgeId e) const noexcept {
    CCDN_ASSERT(integer_costs() && e < qcost_.size(),
                "quantized cost read without set_cost_quantization");
    return qcost_[e];
  }

  /// Mirror every cost into qcost() at `scale` fixed-point units per km
  /// (qcost = llround(cost * scale), pair arcs exactly negated). Sticky:
  /// survives clear()/truncate(), and later add_edge() calls quantize as
  /// they append. Requires |cost * scale| to fit int32 (checked per edge).
  void set_cost_quantization(double scale);
  [[nodiscard]] bool integer_costs() const noexcept {
    return cost_scale_ > 0.0;
  }
  [[nodiscard]] double cost_scale() const noexcept { return cost_scale_; }

  /// Flow currently pushed through a *forward* edge.
  [[nodiscard]] std::int64_t flow(EdgeId e) const;
  /// Original capacity of a forward edge.
  [[nodiscard]] std::int64_t original_capacity(EdgeId e) const;

  /// Edge ids (forward and residual) leaving a node, as a view into the
  /// shared CSR arc pool. Invalidated by any adjacency mutation (add_edge,
  /// drop_*, focus_out_edges, restore_arcs, compact, truncate, clear) —
  /// including add_edge on a *different* node, since slices share one pool.
  [[nodiscard]] std::span<const EdgeId> out_edges(NodeId node) const {
    CCDN_REQUIRE(node < nodes_.size(), "node id out of range");
    const ArcRange& r = nodes_[node];
    return {arc_pool_.data() + r.begin, r.end - r.begin};
  }

  /// Reset all flows to zero (restores capacities).
  void reset_flows() noexcept;

  /// Pre-allocate room for `nodes` nodes and `edges` forward edges, so a
  /// build loop of that size performs no further allocations.
  void reserve(std::size_t nodes, std::size_t edges);

  /// Reset to `num_nodes` isolated nodes, dropping every edge but keeping
  /// the allocated buffers for reuse. Surviving nodes keep their arc-slice
  /// reservations (re-packed tightly, so repeated clear/build cycles reuse
  /// the same pool bytes instead of fragmenting it); nodes gained start
  /// with no reservation.
  void clear(std::size_t num_nodes);

  /// Structural snapshot for truncate().
  struct Checkpoint {
    std::size_t nodes = 0;
    std::size_t stored_edges = 0;  // internal count: forward + residual
  };
  [[nodiscard]] Checkpoint checkpoint() const noexcept {
    return {nodes_.size(), to_.size()};
  }

  /// Roll the network back to `cp`: every node and edge added after the
  /// checkpoint is removed. Flows on surviving edges are untouched — the
  /// residual state of the retained prefix is exactly what it was, which is
  /// what lets a θ sweep keep committed flow on a persistent scaffold while
  /// re-deriving transient structure each step. Surviving nodes keep their
  /// slice reservations, so the next transient build appends into the same
  /// pool bytes.
  void truncate(const Checkpoint& cp);

  /// Re-arm a forward edge with a fresh capacity: residual capacity and the
  /// flow() baseline both become `cap`, the paired backward arc drops to
  /// zero, so the edge reads as unused. The cross-slot online patch uses
  /// this to re-cap a retained scaffold's source/sink arcs with the new
  /// slot's φ values instead of rebuilding the scaffold.
  void reset_edge(EdgeId e, std::int64_t cap);

  /// Zero the residual (backward) arc of every edge, freezing the current
  /// flows in place: committed flow can no longer be rerouted by later
  /// augmentation, and every remaining positive-capacity arc is a forward
  /// arc with non-negative cost (so zero node potentials become valid
  /// again; see DESIGN.md §3.7). flow() readings are unaffected and
  /// reset_flows() still restores the original capacities.
  void freeze_residuals() noexcept;

  /// Make the current capacities the new flow() baseline (zeroing every
  /// reading). The θ sweep's transient regime truncates its pair arcs
  /// each step and re-solves from zero on the frozen scaffold, so without
  /// a rebase the scaffold arcs report cumulative multi-step flow while
  /// the freshly appended pair arcs report only the current step's — a
  /// storage-walking conservation audit would see phantom imbalance at
  /// every drained endpoint. After a rebase, flow() measures the new
  /// epoch only. Note reset_flows() restores to the rebased baseline.
  void rebase_flows() noexcept;

  /// Remove arcs whose pair is dead — zero residual in both directions —
  /// from the adjacency slices, so searches stop scanning them. Only sound
  /// after freeze_residuals(): with the backward arc permanently zero, the
  /// forward residual can never grow back. Edge storage and ids are
  /// untouched (flow() and edge() keep working); only out_edges() shrinks.
  /// Relative order inside each slice is preserved, so a later truncate()
  /// still pops the transient tail correctly.
  void drop_dead_arcs() noexcept;

  /// Remove every arc with id >= `first` from the adjacency slices, keeping
  /// edge storage (ids, flow() readings) intact. Used by the θ sweep after
  /// a step commits: exhaustion proved every surviving pair arc unusable —
  /// its residual is zero or an endpoint's slack is — and slack never
  /// grows within a slot, so the next step only needs the scaffold plus
  /// its own arrivals.
  void drop_arcs_at_or_after(EdgeId first) noexcept;

  /// Remove arcs that can never lie on a source→sink path — arcs entering
  /// `source` and arcs leaving `sink` — from the adjacency slices. An
  /// augmenting path visits the source first and the sink last, so such
  /// arcs would close a cycle; dropping them also turns nodes whose only
  /// remaining arcs pointed back at the source into searchable dead ends.
  void drop_terminal_arcs(NodeId source, NodeId sink) noexcept;

  /// Replace `node`'s adjacency slice with exactly `arcs`. The caller
  /// asserts the omitted arcs cannot carry flow right now (their heads are
  /// dead ends); the θ sweep uses this to narrow the source to the current
  /// step's arrival senders. `arcs` must not alias this network's pool
  /// (callers pass their own buffers). restore_arcs() undoes any
  /// drop/focus.
  void focus_out_edges(NodeId node, std::span<const EdgeId> arcs);

  /// Rebuild the adjacency slices of the first `cp.nodes` nodes from edge
  /// storage, restoring every arc with id < cp.stored_edges that the
  /// drop_*/focus_out_edges compactions removed. The result is exactly the
  /// adjacency a fresh build of those edges would produce (ids ascending
  /// per node). Arcs with id >= cp.stored_edges leaving those nodes are
  /// discarded — pair with truncate(cp) when later edges exist. Slices
  /// whose reservation already fits are refilled in place; only nodes that
  /// grew past their reservation relocate.
  void restore_arcs(const Checkpoint& cp);

  /// Re-pack every adjacency slice tightly into a fresh pool in node order
  /// (layout-only: out_edges() contents and order are unchanged, slack
  /// reservations are dropped). Rarely needed — clear() already re-packs —
  /// but available to callers that mutated heavily and want the pool
  /// minimal before a long read-only phase.
  void compact();

  /// Bytes of CSR pool currently reserved (live + slack + fragmentation);
  /// observability for the layout benches and the reuse tests.
  [[nodiscard]] std::size_t arc_pool_slots() const noexcept {
    return arc_pool_.size();
  }

  // --- solver interface (residual manipulation) ---
  [[nodiscard]] EdgeId paired(EdgeId e) const noexcept { return e ^ 1u; }
  void push(EdgeId e, std::int64_t amount);

 private:
  /// One node's slice of arc_pool_: arcs live in [begin, end), with
  /// [begin, begin + cap) reserved. Appends past the reservation relocate
  /// the slice to the pool's end with doubled capacity (amortized O(1));
  /// the abandoned region becomes slack until the next clear()/compact().
  struct ArcRange {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    std::uint32_t cap = 0;
  };

  void append_arc(NodeId node, EdgeId arc);
  /// Move `node`'s slice to the pool tail with room for `min_cap` arcs.
  void relocate(NodeId node, std::uint32_t min_cap);
  void quantize_edge_pair(EdgeId forward);

  // SoA edge storage; index = arc id, forward arcs even, residual odd.
  std::vector<NodeId> from_;
  std::vector<NodeId> to_;
  std::vector<std::int64_t> residual_;
  std::vector<double> cost_;
  std::vector<std::int32_t> qcost_;          // mirror; see integer_costs()
  std::vector<std::int64_t> original_caps_;  // per stored edge

  // CSR adjacency: per-node slices over one shared arc-id pool.
  std::vector<ArcRange> nodes_;
  std::vector<EdgeId> arc_pool_;
  std::vector<std::uint32_t> restore_counts_;  // restore_arcs scratch

  double cost_scale_ = 0.0;  // 0 = quantization off

#ifdef CCDN_ADJACENCY_ORACLE
  /// Shadow vector-of-vectors adjacency maintained with the pre-CSR
  /// algorithms; every mutator cross-checks the CSR slices against it.
  std::vector<std::vector<EdgeId>> oracle_heads_;
  void oracle_check() const;
#endif
};

}  // namespace ccdn
