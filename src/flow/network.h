// Directed flow network with residual edges.
//
// RBCAer models request balancing as a min-cost max-flow problem between
// overloaded and under-utilized hotspots (paper §IV-A); this is the shared
// graph representation for the Dinic and MCMF solvers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.h"

namespace ccdn {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

class FlowNetwork {
 public:
  /// Network with `num_nodes` nodes and no edges.
  explicit FlowNetwork(std::size_t num_nodes);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return heads_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edges_.size() / 2;
  }

  /// Append one node; returns its id.
  NodeId add_node();

  /// Add a directed edge with capacity and per-unit cost; the paired
  /// residual edge (capacity 0, cost -cost) is created automatically.
  /// Returns the forward edge id. Requires capacity >= 0.
  EdgeId add_edge(NodeId from, NodeId to, std::int64_t capacity, double cost);

  struct Edge {
    NodeId from = 0;
    NodeId to = 0;
    std::int64_t capacity = 0;  // residual capacity
    double cost = 0.0;
  };

  [[nodiscard]] const Edge& edge(EdgeId e) const;
  /// Flow currently pushed through a *forward* edge.
  [[nodiscard]] std::int64_t flow(EdgeId e) const;
  /// Original capacity of a forward edge.
  [[nodiscard]] std::int64_t original_capacity(EdgeId e) const;

  /// Edge ids (forward and residual) leaving a node.
  [[nodiscard]] std::span<const EdgeId> out_edges(NodeId node) const;

  /// Reset all flows to zero (restores capacities).
  void reset_flows() noexcept;

  // --- solver interface (residual manipulation) ---
  [[nodiscard]] EdgeId paired(EdgeId e) const noexcept { return e ^ 1u; }
  void push(EdgeId e, std::int64_t amount);

 private:
  friend class Dinic;
  friend class MinCostMaxFlow;

  std::vector<Edge> edges_;                  // interleaved fwd/residual
  std::vector<std::int64_t> original_caps_;  // per stored edge
  std::vector<std::vector<EdgeId>> heads_;   // adjacency: node -> edge ids
};

}  // namespace ccdn
