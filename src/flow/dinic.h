// Dinic's max-flow algorithm.
//
// Used where only the flow value matters (e.g. the achievable `maxflow`
// normalization in the θ-influence experiment, Fig. 9) and as an oracle in
// MCMF property tests.
#pragma once

#include "flow/network.h"

namespace ccdn {

class Dinic {
 public:
  /// Computes a maximum flow from `source` to `sink`, mutating the residual
  /// capacities of `net`. Returns the flow value.
  static std::int64_t solve(FlowNetwork& net, NodeId source, NodeId sink);
};

}  // namespace ccdn
