#include "flow/network.h"

namespace ccdn {

FlowNetwork::FlowNetwork(std::size_t num_nodes) : heads_(num_nodes) {}

NodeId FlowNetwork::add_node() {
  heads_.emplace_back();
  return static_cast<NodeId>(heads_.size() - 1);
}

EdgeId FlowNetwork::add_edge(NodeId from, NodeId to, std::int64_t capacity,
                             double cost) {
  CCDN_REQUIRE(from < heads_.size() && to < heads_.size(),
               "edge endpoint out of range");
  CCDN_REQUIRE(capacity >= 0, "negative capacity");
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back({from, to, capacity, cost});
  edges_.push_back({to, from, 0, -cost});
  original_caps_.push_back(capacity);
  original_caps_.push_back(0);
  heads_[from].push_back(id);
  heads_[to].push_back(id + 1);
  return id;
}

const FlowNetwork::Edge& FlowNetwork::edge(EdgeId e) const {
  CCDN_REQUIRE(e < edges_.size(), "edge id out of range");
  return edges_[e];
}

std::int64_t FlowNetwork::flow(EdgeId e) const {
  CCDN_REQUIRE(e < edges_.size() && (e & 1u) == 0, "not a forward edge id");
  return original_caps_[e] - edges_[e].capacity;
}

std::int64_t FlowNetwork::original_capacity(EdgeId e) const {
  CCDN_REQUIRE(e < edges_.size(), "edge id out of range");
  return original_caps_[e];
}

std::span<const EdgeId> FlowNetwork::out_edges(NodeId node) const {
  CCDN_REQUIRE(node < heads_.size(), "node id out of range");
  return heads_[node];
}

void FlowNetwork::reset_flows() noexcept {
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    edges_[e].capacity = original_caps_[e];
  }
}

void FlowNetwork::push(EdgeId e, std::int64_t amount) {
  CCDN_REQUIRE(e < edges_.size(), "edge id out of range");
  CCDN_REQUIRE(amount >= 0 && amount <= edges_[e].capacity,
               "push exceeds residual capacity");
  edges_[e].capacity -= amount;
  edges_[paired(e)].capacity += amount;
}

}  // namespace ccdn
