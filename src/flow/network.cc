#include "flow/network.h"

namespace ccdn {

FlowNetwork::FlowNetwork(std::size_t num_nodes) : heads_(num_nodes) {}

NodeId FlowNetwork::add_node() {
  heads_.emplace_back();
  return static_cast<NodeId>(heads_.size() - 1);
}

EdgeId FlowNetwork::add_edge(NodeId from, NodeId to, std::int64_t capacity,
                             double cost) {
  CCDN_REQUIRE(from < heads_.size() && to < heads_.size(),
               "edge endpoint out of range");
  CCDN_REQUIRE(capacity >= 0, "negative capacity");
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back({from, to, capacity, cost});
  edges_.push_back({to, from, 0, -cost});
  original_caps_.push_back(capacity);
  original_caps_.push_back(0);
  heads_[from].push_back(id);
  heads_[to].push_back(id + 1);
  return id;
}

const FlowNetwork::Edge& FlowNetwork::edge(EdgeId e) const {
  CCDN_REQUIRE(e < edges_.size(), "edge id out of range");
  return edges_[e];
}

std::int64_t FlowNetwork::flow(EdgeId e) const {
  CCDN_REQUIRE(e < edges_.size() && (e & 1u) == 0, "not a forward edge id");
  return original_caps_[e] - edges_[e].capacity;
}

std::int64_t FlowNetwork::original_capacity(EdgeId e) const {
  CCDN_REQUIRE(e < edges_.size(), "edge id out of range");
  return original_caps_[e];
}

std::span<const EdgeId> FlowNetwork::out_edges(NodeId node) const {
  CCDN_REQUIRE(node < heads_.size(), "node id out of range");
  return heads_[node];
}

void FlowNetwork::reset_flows() noexcept {
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    edges_[e].capacity = original_caps_[e];
  }
}

void FlowNetwork::reserve(std::size_t nodes, std::size_t edges) {
  heads_.reserve(nodes);
  edges_.reserve(2 * edges);
  original_caps_.reserve(2 * edges);
}

void FlowNetwork::clear(std::size_t num_nodes) {
  // Keep the adjacency buffers of surviving node slots; slots beyond
  // `num_nodes` are destroyed, slots gained start empty.
  for (std::size_t n = 0; n < heads_.size() && n < num_nodes; ++n) {
    heads_[n].clear();
  }
  heads_.resize(num_nodes);
  edges_.clear();
  original_caps_.clear();
}

void FlowNetwork::truncate(const Checkpoint& cp) {
  CCDN_REQUIRE(cp.nodes <= heads_.size() && cp.stored_edges <= edges_.size(),
               "checkpoint ahead of network");
  CCDN_REQUIRE(cp.stored_edges % 2 == 0, "checkpoint splits an edge pair");
  // Per-node edge lists are appended in increasing id order, so removed
  // edges form each list's tail.
  for (std::size_t node = 0; node < cp.nodes; ++node) {
    auto& head = heads_[node];
    while (!head.empty() && head.back() >= cp.stored_edges) head.pop_back();
  }
  heads_.resize(cp.nodes);
  edges_.resize(cp.stored_edges);
  original_caps_.resize(cp.stored_edges);
}

void FlowNetwork::reset_edge(EdgeId e, std::int64_t cap) {
  CCDN_REQUIRE(e + 1 < edges_.size() && (e & 1u) == 0,
               "not a forward edge id");
  CCDN_REQUIRE(cap >= 0, "negative capacity");
  edges_[e].capacity = cap;
  edges_[e ^ 1u].capacity = 0;
  original_caps_[e] = cap;
  original_caps_[e ^ 1u] = 0;
}

void FlowNetwork::freeze_residuals() noexcept {
  // Backward arcs sit at odd ids (add_edge interleaves them).
  for (std::size_t e = 1; e < edges_.size(); e += 2) {
    edges_[e].capacity = 0;
  }
}

void FlowNetwork::rebase_flows() noexcept {
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    original_caps_[e] = edges_[e].capacity;
  }
}

void FlowNetwork::drop_dead_arcs() noexcept {
  for (auto& head : heads_) {
    std::size_t out = 0;
    for (const EdgeId e : head) {
      if (edges_[e].capacity > 0 || edges_[e ^ 1u].capacity > 0) {
        head[out++] = e;
      }
    }
    head.resize(out);
  }
}

void FlowNetwork::drop_arcs_at_or_after(EdgeId first) noexcept {
  for (auto& head : heads_) {
    std::size_t out = 0;
    for (const EdgeId e : head) {
      if (e < first) head[out++] = e;
    }
    head.resize(out);
  }
}

void FlowNetwork::drop_terminal_arcs(NodeId source, NodeId sink) noexcept {
  heads_[sink].clear();
  for (auto& head : heads_) {
    std::size_t out = 0;
    for (const EdgeId e : head) {
      if (edges_[e].to != source) head[out++] = e;
    }
    head.resize(out);
  }
}

void FlowNetwork::focus_out_edges(NodeId node, std::span<const EdgeId> arcs) {
  CCDN_REQUIRE(node < heads_.size(), "node id out of range");
  heads_[node].assign(arcs.begin(), arcs.end());
}

void FlowNetwork::restore_arcs(const Checkpoint& cp) {
  CCDN_REQUIRE(cp.nodes <= heads_.size() && cp.stored_edges <= edges_.size(),
               "checkpoint ahead of network");
  for (std::size_t n = 0; n < cp.nodes; ++n) heads_[n].clear();
  for (EdgeId e = 0; e < cp.stored_edges; ++e) {
    heads_[edges_[e].from].push_back(e);
  }
}

void FlowNetwork::push(EdgeId e, std::int64_t amount) {
  CCDN_REQUIRE(e < edges_.size(), "edge id out of range");
  CCDN_REQUIRE(amount >= 0 && amount <= edges_[e].capacity,
               "push exceeds residual capacity");
  edges_[e].capacity -= amount;
  edges_[paired(e)].capacity += amount;
}

}  // namespace ccdn
