#include "flow/network.h"

#include <algorithm>

namespace ccdn {

namespace {

/// Smallest slice reservation handed to a node's first arc. Most scaffold
/// nodes carry 2 arcs (source arc + sink arc pair halves land on separate
/// nodes), senders grow geometrically from here.
constexpr std::uint32_t kMinSliceCap = 4;

}  // namespace

FlowNetwork::FlowNetwork(std::size_t num_nodes) : nodes_(num_nodes) {
#ifdef CCDN_ADJACENCY_ORACLE
  oracle_heads_.resize(num_nodes);
#endif
}

NodeId FlowNetwork::add_node() {
  nodes_.emplace_back();
#ifdef CCDN_ADJACENCY_ORACLE
  oracle_heads_.emplace_back();
#endif
  return static_cast<NodeId>(nodes_.size() - 1);
}

void FlowNetwork::relocate(NodeId node, std::uint32_t min_cap) {
  ArcRange& r = nodes_[node];
  std::uint32_t new_cap = std::max(kMinSliceCap, r.cap * 2);
  while (new_cap < min_cap) new_cap *= 2;
  const auto new_begin = static_cast<std::uint32_t>(arc_pool_.size());
  arc_pool_.resize(arc_pool_.size() + new_cap);
  // The resize may have reallocated the pool, but r's indices stay valid:
  // copy the live ids from the old slice region into the new tail.
  std::copy(arc_pool_.begin() + r.begin, arc_pool_.begin() + r.end,
            arc_pool_.begin() + new_begin);
  r.end = new_begin + (r.end - r.begin);
  r.begin = new_begin;
  r.cap = new_cap;
}

void FlowNetwork::append_arc(NodeId node, EdgeId arc) {
  ArcRange& r = nodes_[node];
  if (r.end - r.begin == r.cap) {
    relocate(node, r.cap + 1);
  }
  arc_pool_[nodes_[node].end++] = arc;
}

void FlowNetwork::quantize_edge_pair(EdgeId forward) {
  const double scaled = cost_[forward] * cost_scale_;
  CCDN_REQUIRE(
      std::abs(scaled) <=
          static_cast<double>(std::numeric_limits<std::int32_t>::max()),
      "cost overflows the int32 fixed-point range at this scale");
  const auto q = static_cast<std::int32_t>(std::llround(scaled));
  qcost_[forward] = q;
  qcost_[forward + 1] = -q;
}

EdgeId FlowNetwork::add_edge(NodeId from, NodeId to, std::int64_t capacity,
                             double cost) {
  CCDN_REQUIRE(from < nodes_.size() && to < nodes_.size(),
               "edge endpoint out of range");
  CCDN_REQUIRE(capacity >= 0, "negative capacity");
  const auto id = static_cast<EdgeId>(to_.size());
  from_.push_back(from);
  to_.push_back(to);
  residual_.push_back(capacity);
  cost_.push_back(cost);
  from_.push_back(to);
  to_.push_back(from);
  residual_.push_back(0);
  cost_.push_back(-cost);
  original_caps_.push_back(capacity);
  original_caps_.push_back(0);
  if (integer_costs()) {
    qcost_.resize(qcost_.size() + 2);
    quantize_edge_pair(id);
  }
  append_arc(from, id);
  append_arc(to, id + 1);
#ifdef CCDN_ADJACENCY_ORACLE
  oracle_heads_[from].push_back(id);
  oracle_heads_[to].push_back(id + 1);
  oracle_check();
#endif
  return id;
}

void FlowNetwork::set_cost_quantization(double scale) {
  CCDN_REQUIRE(scale > 0.0, "non-positive quantization scale");
  cost_scale_ = scale;
  qcost_.resize(to_.size());
  for (EdgeId e = 0; e + 1 < to_.size(); e += 2) quantize_edge_pair(e);
}

std::int64_t FlowNetwork::flow(EdgeId e) const {
  CCDN_REQUIRE(e < to_.size() && (e & 1u) == 0, "not a forward edge id");
  return original_caps_[e] - residual_[e];
}

std::int64_t FlowNetwork::original_capacity(EdgeId e) const {
  CCDN_REQUIRE(e < to_.size(), "edge id out of range");
  return original_caps_[e];
}

void FlowNetwork::reset_flows() noexcept {
  for (std::size_t e = 0; e < residual_.size(); ++e) {
    residual_[e] = original_caps_[e];
  }
}

void FlowNetwork::reserve(std::size_t nodes, std::size_t edges) {
  nodes_.reserve(nodes);
  from_.reserve(2 * edges);
  to_.reserve(2 * edges);
  residual_.reserve(2 * edges);
  cost_.reserve(2 * edges);
  original_caps_.reserve(2 * edges);
  if (integer_costs()) qcost_.reserve(2 * edges);
  arc_pool_.reserve(2 * edges);
}

void FlowNetwork::clear(std::size_t num_nodes) {
  // Keep surviving nodes' slice reservations but re-pack them tightly in
  // node order: every slice is empty after a clear, so the re-pack is a
  // pure cursor walk, and it reclaims both relocation slack and the slices
  // of dropped nodes — repeated clear/build cycles of the same shape touch
  // the same pool bytes every time instead of growing the pool.
  nodes_.resize(num_nodes);
  std::uint32_t cursor = 0;
  for (ArcRange& r : nodes_) {
    r.begin = r.end = cursor;
    cursor += r.cap;
  }
  arc_pool_.resize(cursor);
  from_.clear();
  to_.clear();
  residual_.clear();
  cost_.clear();
  qcost_.clear();
  original_caps_.clear();
#ifdef CCDN_ADJACENCY_ORACLE
  for (std::size_t n = 0; n < oracle_heads_.size() && n < num_nodes; ++n) {
    oracle_heads_[n].clear();
  }
  oracle_heads_.resize(num_nodes);
  oracle_check();
#endif
}

void FlowNetwork::truncate(const Checkpoint& cp) {
  CCDN_REQUIRE(cp.nodes <= nodes_.size() && cp.stored_edges <= to_.size(),
               "checkpoint ahead of network");
  CCDN_REQUIRE(cp.stored_edges % 2 == 0, "checkpoint splits an edge pair");
  // Per-node slices are appended in increasing id order, so removed edges
  // form each slice's tail.
  for (std::size_t node = 0; node < cp.nodes; ++node) {
    ArcRange& r = nodes_[node];
    while (r.end > r.begin && arc_pool_[r.end - 1] >= cp.stored_edges) {
      --r.end;
    }
  }
  nodes_.resize(cp.nodes);
  // Reclaim the pool tail the dropped nodes' slices occupied (transient
  // guide nodes are appended last, so their slices sit at the tail); the θ
  // sweep's truncate-per-step loop then reuses the same bytes every epoch
  // instead of growing the pool for the life of an online scaffold.
  std::uint32_t tail = 0;
  for (const ArcRange& r : nodes_) tail = std::max(tail, r.begin + r.cap);
  arc_pool_.resize(tail);
  from_.resize(cp.stored_edges);
  to_.resize(cp.stored_edges);
  residual_.resize(cp.stored_edges);
  cost_.resize(cp.stored_edges);
  if (integer_costs()) qcost_.resize(cp.stored_edges);
  original_caps_.resize(cp.stored_edges);
#ifdef CCDN_ADJACENCY_ORACLE
  for (std::size_t node = 0; node < cp.nodes; ++node) {
    auto& head = oracle_heads_[node];
    while (!head.empty() && head.back() >= cp.stored_edges) head.pop_back();
  }
  oracle_heads_.resize(cp.nodes);
  oracle_check();
#endif
}

void FlowNetwork::reset_edge(EdgeId e, std::int64_t cap) {
  CCDN_REQUIRE(e + 1 < to_.size() && (e & 1u) == 0, "not a forward edge id");
  CCDN_REQUIRE(cap >= 0, "negative capacity");
  residual_[e] = cap;
  residual_[e ^ 1u] = 0;
  original_caps_[e] = cap;
  original_caps_[e ^ 1u] = 0;
}

void FlowNetwork::freeze_residuals() noexcept {
  // Backward arcs sit at odd ids (add_edge interleaves them).
  for (std::size_t e = 1; e < residual_.size(); e += 2) {
    residual_[e] = 0;
  }
}

void FlowNetwork::rebase_flows() noexcept {
  for (std::size_t e = 0; e < residual_.size(); ++e) {
    original_caps_[e] = residual_[e];
  }
}

void FlowNetwork::drop_dead_arcs() noexcept {
  for (ArcRange& r : nodes_) {
    std::uint32_t out = r.begin;
    for (std::uint32_t i = r.begin; i < r.end; ++i) {
      const EdgeId e = arc_pool_[i];
      if (residual_[e] > 0 || residual_[e ^ 1u] > 0) {
        arc_pool_[out++] = e;
      }
    }
    r.end = out;
  }
#ifdef CCDN_ADJACENCY_ORACLE
  for (auto& head : oracle_heads_) {
    std::size_t out = 0;
    for (const EdgeId e : head) {
      if (residual_[e] > 0 || residual_[e ^ 1u] > 0) head[out++] = e;
    }
    head.resize(out);
  }
  oracle_check();
#endif
}

void FlowNetwork::drop_arcs_at_or_after(EdgeId first) noexcept {
  for (ArcRange& r : nodes_) {
    std::uint32_t out = r.begin;
    for (std::uint32_t i = r.begin; i < r.end; ++i) {
      const EdgeId e = arc_pool_[i];
      if (e < first) arc_pool_[out++] = e;
    }
    r.end = out;
  }
#ifdef CCDN_ADJACENCY_ORACLE
  for (auto& head : oracle_heads_) {
    std::size_t out = 0;
    for (const EdgeId e : head) {
      if (e < first) head[out++] = e;
    }
    head.resize(out);
  }
  oracle_check();
#endif
}

void FlowNetwork::drop_terminal_arcs(NodeId source, NodeId sink) noexcept {
  nodes_[sink].end = nodes_[sink].begin;
  for (ArcRange& r : nodes_) {
    std::uint32_t out = r.begin;
    for (std::uint32_t i = r.begin; i < r.end; ++i) {
      const EdgeId e = arc_pool_[i];
      if (to_[e] != source) arc_pool_[out++] = e;
    }
    r.end = out;
  }
#ifdef CCDN_ADJACENCY_ORACLE
  oracle_heads_[sink].clear();
  for (auto& head : oracle_heads_) {
    std::size_t out = 0;
    for (const EdgeId e : head) {
      if (to_[e] != source) head[out++] = e;
    }
    head.resize(out);
  }
  oracle_check();
#endif
}

void FlowNetwork::focus_out_edges(NodeId node, std::span<const EdgeId> arcs) {
  CCDN_REQUIRE(node < nodes_.size(), "node id out of range");
  if (arcs.size() > nodes_[node].cap) {
    relocate(node, static_cast<std::uint32_t>(arcs.size()));
  }
  ArcRange& r = nodes_[node];
  std::copy(arcs.begin(), arcs.end(), arc_pool_.begin() + r.begin);
  r.end = r.begin + static_cast<std::uint32_t>(arcs.size());
#ifdef CCDN_ADJACENCY_ORACLE
  oracle_heads_[node].assign(arcs.begin(), arcs.end());
  oracle_check();
#endif
}

void FlowNetwork::restore_arcs(const Checkpoint& cp) {
  CCDN_REQUIRE(cp.nodes <= nodes_.size() && cp.stored_edges <= to_.size(),
               "checkpoint ahead of network");
  // Counting pass: how many arcs each retained node will hold. Every arc
  // with id < cp.stored_edges has both endpoints < cp.nodes (edges never
  // reference nodes added after them), so only those slices change.
  restore_counts_.assign(cp.nodes, 0);
  for (EdgeId e = 0; e < cp.stored_edges; ++e) {
    ++restore_counts_[from_[e]];
  }
  for (std::size_t n = 0; n < cp.nodes; ++n) {
    ArcRange& r = nodes_[n];
    if (restore_counts_[n] > r.cap) {
      relocate(static_cast<NodeId>(n), restore_counts_[n]);
    }
    nodes_[n].end = nodes_[n].begin;  // relocate may have moved the slice
  }
  // Fill pass in id order: slices are disjoint, so each node's arcs land
  // ascending — exactly the adjacency a fresh build would produce.
  for (EdgeId e = 0; e < cp.stored_edges; ++e) {
    arc_pool_[nodes_[from_[e]].end++] = e;
  }
#ifdef CCDN_ADJACENCY_ORACLE
  for (std::size_t n = 0; n < cp.nodes; ++n) oracle_heads_[n].clear();
  for (EdgeId e = 0; e < cp.stored_edges; ++e) {
    oracle_heads_[from_[e]].push_back(e);
  }
  oracle_check();
#endif
}

void FlowNetwork::compact() {
  std::vector<EdgeId> fresh;
  fresh.reserve(to_.size());
  for (ArcRange& r : nodes_) {
    const auto begin = static_cast<std::uint32_t>(fresh.size());
    fresh.insert(fresh.end(), arc_pool_.begin() + r.begin,
                 arc_pool_.begin() + r.end);
    r.cap = r.end - r.begin;
    r.begin = begin;
    r.end = static_cast<std::uint32_t>(fresh.size());
  }
  arc_pool_ = std::move(fresh);
#ifdef CCDN_ADJACENCY_ORACLE
  oracle_check();
#endif
}

void FlowNetwork::push(EdgeId e, std::int64_t amount) {
  CCDN_REQUIRE(e < to_.size(), "edge id out of range");
  CCDN_REQUIRE(amount >= 0 && amount <= residual_[e],
               "push exceeds residual capacity");
  residual_[e] -= amount;
  residual_[paired(e)] += amount;
}

#ifdef CCDN_ADJACENCY_ORACLE
void FlowNetwork::oracle_check() const {
  CCDN_ENSURE(oracle_heads_.size() == nodes_.size(),
              "adjacency oracle: node count diverged");
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const auto slice = out_edges(static_cast<NodeId>(n));
    CCDN_ENSURE(slice.size() == oracle_heads_[n].size(),
                "adjacency oracle: slice length diverged");
    for (std::size_t i = 0; i < slice.size(); ++i) {
      CCDN_ENSURE(slice[i] == oracle_heads_[n][i],
                  "adjacency oracle: arc id diverged");
    }
  }
}
#endif

}  // namespace ccdn
