// Min-cost max-flow via successive shortest augmenting paths.
//
// This is the MCMF engine Algorithm 1 invokes on the Gd/Gc graphs
// (the paper cites Ford-Fulkerson flows [19]). Two path-search strategies
// are provided: SPFA (Bellman-Ford queue variant; handles the negative
// residual costs directly) and Dijkstra with Johnson potentials (faster on
// large sparse graphs). Both produce a maximum flow of minimum total cost;
// costs are doubles (km of geo-distance).
#pragma once

#include "flow/network.h"

namespace ccdn {

enum class McmfStrategy {
  kSpfa,
  kDijkstraPotentials,
};

struct McmfResult {
  std::int64_t flow = 0;
  double cost = 0.0;
};

class MinCostMaxFlow {
 public:
  /// Computes a min-cost max-flow from `source` to `sink`, mutating the
  /// residual capacities of `net`. All forward-edge costs must be
  /// non-negative.
  static McmfResult solve(FlowNetwork& net, NodeId source, NodeId sink,
                          McmfStrategy strategy = McmfStrategy::kSpfa);

  /// Same, but stop once `flow_limit` units have been routed.
  static McmfResult solve_up_to(FlowNetwork& net, NodeId source, NodeId sink,
                                std::int64_t flow_limit,
                                McmfStrategy strategy = McmfStrategy::kSpfa);
};

}  // namespace ccdn
