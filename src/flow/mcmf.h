// Min-cost max-flow via successive shortest augmenting paths.
//
// This is the MCMF engine Algorithm 1 invokes on the Gd/Gc graphs
// (the paper cites Ford-Fulkerson flows [19]). Two path-search strategies
// are provided: SPFA (Bellman-Ford queue variant; handles the negative
// residual costs directly) and Dijkstra with Johnson potentials (faster on
// large sparse graphs). Both produce a maximum flow of minimum total cost.
//
// Costs come in two domains (McmfConfig::integer_costs):
//  - double (default): km of geo-distance, compared with a 1e-9 noise
//    tolerance. This is the digest oracle — its search decisions define
//    the plans every other path must reproduce bit for bit.
//  - fixed-point int32 (opt-in): the network's quantized cost mirror
//    (FlowNetwork::set_cost_quantization), exact integer comparisons, and
//    a monotone radix heap instead of the binary heap for the Dijkstra
//    strategy. Quantization rounds away sub-resolution cost differences,
//    so tie-breaking — and therefore the chosen paths — can differ from
//    the double engine's; the contract is plan equality (same flows on
//    the RBCAer graphs), not digest identity. See DESIGN.md §3.11.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "flow/network.h"
#include "util/arena.h"
#include "util/radix_heap.h"

namespace ccdn {

enum class McmfStrategy {
  kSpfa,
  kDijkstraPotentials,
};

/// Engine selection for a McmfSolver.
struct McmfConfig {
  McmfStrategy strategy = McmfStrategy::kSpfa;
  /// Search in the fixed-point integer-cost domain. Requires every network
  /// passed to the solver to carry the quantized mirror
  /// (FlowNetwork::set_cost_quantization). Plan-equality variant, not a
  /// digest oracle — see the header comment.
  bool integer_costs = false;
};

struct McmfResult {
  std::int64_t flow = 0;
  double cost = 0.0;
};

/// Reusable successive-shortest-path engine.
///
/// Unlike the one-shot MinCostMaxFlow wrappers below, a solver instance owns
/// its search buffers (distance/parent/visited arrays, the SPFA queue flags
/// and the Dijkstra heap) and its node potentials across calls, so a caller
/// that solves many related instances — the θ sweep solves one per θ step —
/// stops re-allocating five per-node vectors for every augmentation. Passing
/// a BumpArena additionally backs those buffers with the caller's lane arena
/// (util/arena.h), so a clone-ring lane's scratch is contiguous and
/// steady-state slots perform no heap allocation.
///
/// augment() continues from the network's *current* residual state: calling
/// it again after pushing flow or appending edges only routes whatever
/// additional flow has become feasible. For the Dijkstra strategy the
/// carried potentials must price every positive-capacity residual arc
/// non-negatively; augmentation preserves that invariant, but appending
/// edges can break it — check potentials_valid_for() over the new edges and
/// fall back to reprice() or reset_potentials() (see DESIGN.md §3.7).
class McmfSolver {
 public:
  static constexpr std::int64_t kUnlimited =
      std::numeric_limits<std::int64_t>::max();

  explicit McmfSolver(McmfStrategy strategy = McmfStrategy::kSpfa)
      : McmfSolver(McmfConfig{strategy, false}) {}
  explicit McmfSolver(const McmfConfig& config, BumpArena* arena = nullptr)
      : strategy_(config.strategy),
        integer_(config.integer_costs),
        state_(arena),
        potential_(ArenaAllocator<double>(arena)),
        ipotential_(ArenaAllocator<std::int64_t>(arena)) {}

  [[nodiscard]] McmfStrategy strategy() const noexcept { return strategy_; }
  [[nodiscard]] bool integer_costs() const noexcept { return integer_; }

  /// Min-cost augmentation from the current residual state until no
  /// source→sink path remains or `flow_limit` additional units have been
  /// routed. Returns the flow and cost of the *increment* routed by this
  /// call only (cost is reported in km in both domains; the integer engine
  /// converts through the network's cost_scale()).
  McmfResult augment(FlowNetwork& net, NodeId source, NodeId sink,
                     std::int64_t flow_limit = kUnlimited);

  /// Reset the carried potentials to zero for an `num_nodes`-node network.
  /// Zero potentials are valid exactly when every positive-capacity
  /// residual arc has non-negative cost — true for a fresh network (forward
  /// costs are non-negative) and again right after
  /// FlowNetwork::freeze_residuals().
  void reset_potentials(std::size_t num_nodes);

  /// True when every forward edge with id >= `first_edge` (and positive
  /// capacity) prices non-negatively under the carried potentials, and both
  /// endpoints actually hold potentials. After an augment(), newly appended
  /// edges are the only arcs that can violate validity, so callers only
  /// need to check the suffix they added.
  [[nodiscard]] bool potentials_valid_for(const FlowNetwork& net,
                                          EdgeId first_edge) const;

  /// Re-price: recompute exact shortest-path-by-cost potentials from
  /// `source` with SPFA (which tolerates negative residual arcs). Nodes
  /// unreachable from the source are priced at the largest reached
  /// distance; that keeps every arc between reached nodes and every
  /// non-negative-cost arc valid, which covers the post-freeze networks the
  /// θ sweep re-prices (all residual arcs non-negative).
  void reprice(const FlowNetwork& net, NodeId source);

  /// Incremental re-price after appending edges: restore validity by
  /// *lowering* the potentials that edges with id >= `first_edge` violate,
  /// cascading each decrease through the arcs it tightens (a seeded SPFA
  /// relaxation over the existing potentials). Touches only the violation's
  /// neighborhood instead of the whole graph; when the new edges already
  /// price non-negatively this is a pure O(new edges) check and does not
  /// count as a reprice(). Requires a negative-cycle-free residual graph —
  /// always true post-freeze where every arc cost is non-negative.
  ///
  /// `clamp_arcs` names *old* arcs whose heads may have gone stale while
  /// unreachable (the θ sweep's dormant senders, whose potentials stand
  /// still while the source's drifts down). They get the same
  /// relax-and-cascade treatment but are expected maintenance and never
  /// count toward reprices().
  void reprice_from(const FlowNetwork& net, EdgeId first_edge,
                    std::span<const EdgeId> clamp_arcs = {});

  /// Resize the carried potentials to `num_nodes` WITHOUT resetting the
  /// values already held. Shrinking drops the tail (transient nodes that no
  /// longer exist); growing fills new slots with the largest existing
  /// potential — the same "unreached" convention reprice() uses, so arcs
  /// from old nodes into fresh ones start with non-negative slack whenever
  /// the old node prices at or below the maximum. A no-op at equal size;
  /// with no potentials at all it behaves like reset_potentials().
  void ensure_potentials(std::size_t num_nodes);

  /// Adopt the distance labels of the last (exhausted) search as the
  /// carried potentials: every node the search saw takes its exact SPFA
  /// fixpoint distance, every unreached node the largest seen distance.
  /// Called right after augment() returns — the final path search failed,
  /// so its labels are true shortest distances over the current residual
  /// graph and therefore a valid potential vector for it. This is how the
  /// θ sweep's transient Gc epochs hand their prices forward even though
  /// the SPFA engine never reads them: the next epoch starts from these
  /// instead of from nothing, and reprice_from() re-certifies them against
  /// the rebuilt structure.
  void harvest_potentials(const FlowNetwork& net);

  /// Number of reprice() calls since construction (observability for the
  /// warm-start potentials fallback).
  [[nodiscard]] std::size_t reprices() const noexcept { return reprices_; }

  /// The carried node potentials (sized by the last reset_potentials /
  /// reprice call; empty before either, and empty in integer mode — see
  /// ipotentials()). Exposed for the flow auditor's reduced-cost check —
  /// see verify/flow_audit.h.
  [[nodiscard]] std::span<const double> potentials() const noexcept {
    return potential_;
  }
  /// Integer-domain carried potentials (integer mode only; empty
  /// otherwise). Audited by audit_reduced_costs_int — converting them to
  /// doubles would re-introduce exactly the quantization error the 1e-9
  /// tolerance cannot absorb.
  [[nodiscard]] std::span<const std::int64_t> ipotentials() const noexcept {
    return ipotential_;
  }

 private:
  /// Scratch buffers shared by the SPFA and Dijkstra searches, reused
  /// across augmentations and across solves.
  /// Per-node labels are validity-stamped instead of cleared: a label is
  /// live only when its stamp equals the current search's, so starting a
  /// search is O(1) instead of five O(n) fills — the dominant cost when the
  /// θ sweep runs a thousand searches on small per-step graphs.
  struct SearchState {
    explicit SearchState(BumpArena* arena)
        : dist(ArenaAllocator<double>(arena)),
          idist(ArenaAllocator<std::int64_t>(arena)),
          parent_edge(ArenaAllocator<EdgeId>(arena)),
          seen(ArenaAllocator<std::uint32_t>(arena)),
          settled(ArenaAllocator<std::uint32_t>(arena)),
          touched(ArenaAllocator<NodeId>(arena)),
          in_queue(ArenaAllocator<char>(arena)),
          queue(ArenaAllocator<NodeId>(arena)),
          heap(ArenaAllocator<std::pair<double, NodeId>>(arena)) {}

    ArenaVector<double> dist;         // double engine labels
    ArenaVector<std::int64_t> idist;  // integer engine labels
    ArenaVector<EdgeId> parent_edge;
    ArenaVector<std::uint32_t> seen;     // stamp: dist/parent valid
    ArenaVector<std::uint32_t> settled;  // stamp: Dijkstra label final
    ArenaVector<NodeId> touched;  // nodes seen this search, in seen order
    ArenaVector<char> in_queue;  // SPFA membership; all-zero between runs
    ArenaVector<NodeId> queue;   // SPFA deque storage
    ArenaVector<std::pair<double, NodeId>> heap;  // Dijkstra binary heap
    RadixHeap64 rheap;  // integer Dijkstra bucket heap
    std::uint32_t stamp = 0;

    /// Open a new search over `n` nodes: bump the stamp (invalidating all
    /// labels) and grow the buffers if the network grew. Only the active
    /// domain's distance array is kept sized.
    void begin_search(std::size_t n, bool integer) {
      if (++stamp == 0) {  // wrapped: old stamps would alias as live
        std::fill(seen.begin(), seen.end(), 0);
        std::fill(settled.begin(), settled.end(), 0);
        stamp = 1;
      }
      touched.clear();
      const std::size_t labels = integer ? idist.size() : dist.size();
      if (labels < n) {
        if (integer) {
          idist.resize(n);
        } else {
          dist.resize(n);
        }
        parent_edge.resize(n);
        seen.resize(n, 0);
        settled.resize(n, 0);
        in_queue.resize(n, 0);
      }
    }
  };

  bool spfa(const FlowNetwork& net, NodeId source, NodeId sink);
  bool dijkstra(const FlowNetwork& net, NodeId source, NodeId sink);
  void update_potentials(NodeId sink);
  bool spfa_int(const FlowNetwork& net, NodeId source, NodeId sink);
  bool dijkstra_int(const FlowNetwork& net, NodeId source, NodeId sink);
  void update_potentials_int(NodeId sink);

  McmfStrategy strategy_;
  bool integer_ = false;
  SearchState state_;
  ArenaVector<double> potential_;
  ArenaVector<std::int64_t> ipotential_;
  std::size_t reprices_ = 0;
};

class MinCostMaxFlow {
 public:
  /// Computes a min-cost max-flow from `source` to `sink`, mutating the
  /// residual capacities of `net`. All forward-edge costs must be
  /// non-negative.
  static McmfResult solve(FlowNetwork& net, NodeId source, NodeId sink,
                          McmfStrategy strategy = McmfStrategy::kSpfa);

  /// Same, but stop once `flow_limit` units have been routed.
  static McmfResult solve_up_to(FlowNetwork& net, NodeId source, NodeId sink,
                                std::int64_t flow_limit,
                                McmfStrategy strategy = McmfStrategy::kSpfa);
};

}  // namespace ccdn
