// Flow decomposition: express a solved s-t flow as a set of simple paths.
//
// Useful for explaining a balancing solution ("these 37 requests travel
// source → hotspot 12 → guide → hotspot 40 → sink"), for debugging guide
// graphs, and as an independent check that a solver's flow is conserved.
#pragma once

#include <vector>

#include "flow/network.h"

namespace ccdn {

struct FlowPath {
  /// Node sequence from source to sink.
  std::vector<NodeId> nodes;
  /// Flow carried by this path.
  std::int64_t amount = 0;
  /// Total cost per unit along the path.
  double unit_cost = 0.0;
};

/// Decompose the current flow of `net` (as pushed by a solver) into simple
/// source→sink paths. The network's flow state is not modified. Standard
/// result: at most |E| paths. Throws InvariantError if the flow is not
/// conserved (solver bug or tampered network). Flows containing cycles of
/// positive flow are decomposed into the path part only; the residual
/// cycle flow (cost-reducing cycles cannot occur in an optimal solution)
/// is reported via `cycle_flow_remaining` when requested.
[[nodiscard]] std::vector<FlowPath> decompose_flow(
    const FlowNetwork& net, NodeId source, NodeId sink,
    std::int64_t* cycle_flow_remaining = nullptr);

}  // namespace ccdn
