#include "flow/decompose.h"

#include <algorithm>
#include <limits>

namespace ccdn {

std::vector<FlowPath> decompose_flow(const FlowNetwork& net, NodeId source,
                                     NodeId sink,
                                     std::int64_t* cycle_flow_remaining) {
  CCDN_REQUIRE(source < net.num_nodes() && sink < net.num_nodes(),
               "source/sink out of range");
  CCDN_REQUIRE(source != sink, "source equals sink");

  // Mutable copy of per-forward-edge flow.
  std::vector<std::int64_t> remaining(net.num_edges() * 2, 0);
  for (EdgeId e = 0; e < net.num_edges() * 2; e += 2) {
    remaining[e] = net.flow(e);
    CCDN_ASSERT(remaining[e] >= 0, "negative flow on forward edge");
    CCDN_ASSERT(remaining[e] <= net.original_capacity(e),
                "flow exceeds original edge capacity");
  }

  // Verify conservation before decomposing.
  std::vector<std::int64_t> balance(net.num_nodes(), 0);
  for (EdgeId e = 0; e < net.num_edges() * 2; e += 2) {
    balance[net.arc_from(e)] -= remaining[e];
    balance[net.arc_to(e)] += remaining[e];
  }
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (v == source || v == sink) continue;
    CCDN_ENSURE(balance[v] == 0, "flow not conserved at interior node");
  }
  CCDN_ENSURE(balance[source] <= 0 && balance[sink] >= 0 &&
                  balance[source] == -balance[sink],
              "source/sink imbalance mismatch");

  std::vector<FlowPath> paths;
  std::vector<EdgeId> parent(net.num_nodes(), 0);
  std::vector<bool> on_path(net.num_nodes(), false);
  while (true) {
    // Greedy walk from source along positive-flow edges; flows are acyclic
    // along any shortest decomposition, but guard against cycles by
    // stopping on revisit.
    std::fill(on_path.begin(), on_path.end(), false);
    NodeId node = source;
    on_path[source] = true;
    bool reached = false;
    bool stuck = false;
    while (!reached && !stuck) {
      stuck = true;
      for (const EdgeId e : net.out_edges(node)) {
        if ((e & 1u) != 0) continue;  // forward edges only
        if (remaining[e] <= 0) continue;
        const NodeId next = net.arc_to(e);
        if (on_path[next]) continue;  // avoid cycles
        parent[next] = e;
        on_path[next] = true;
        node = next;
        stuck = false;
        break;
      }
      if (node == sink) reached = true;
    }
    if (!reached) break;

    // Bottleneck and cost along the recorded path.
    FlowPath path;
    std::int64_t bottleneck = std::numeric_limits<std::int64_t>::max();
    for (NodeId v = sink; v != source; v = net.arc_from(parent[v])) {
      bottleneck = std::min(bottleneck, remaining[parent[v]]);
    }
    for (NodeId v = sink; v != source; v = net.arc_from(parent[v])) {
      remaining[parent[v]] -= bottleneck;
      path.unit_cost += net.cost(parent[v]);
      path.nodes.push_back(v);
    }
    path.nodes.push_back(source);
    std::reverse(path.nodes.begin(), path.nodes.end());
    CCDN_ASSERT(bottleneck > 0, "decomposed path with zero amount");
    path.amount = bottleneck;
    paths.push_back(std::move(path));
  }

  if (cycle_flow_remaining != nullptr) {
    std::int64_t leftover = 0;
    for (EdgeId e = 0; e < net.num_edges() * 2; e += 2) {
      leftover += remaining[e];
    }
    *cycle_flow_remaining = leftover;
  }
  return paths;
}

}  // namespace ccdn
