#include "flow/dinic.h"

#include <limits>
#include <queue>

namespace ccdn {

namespace {

bool build_levels(const FlowNetwork& net, NodeId source, NodeId sink,
                  std::vector<std::int32_t>& level) {
  level.assign(net.num_nodes(), -1);
  std::queue<NodeId> frontier;
  level[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop();
    for (const EdgeId e : net.out_edges(node)) {
      const NodeId to = net.arc_to(e);
      if (net.residual(e) > 0 && level[to] < 0) {
        level[to] = level[node] + 1;
        frontier.push(to);
      }
    }
  }
  return level[sink] >= 0;
}

std::int64_t augment(FlowNetwork& net, NodeId node, NodeId sink,
                     std::int64_t limit, const std::vector<std::int32_t>& level,
                     std::vector<std::size_t>& next_edge) {
  if (node == sink) return limit;
  for (std::size_t& i = next_edge[node]; i < net.out_edges(node).size(); ++i) {
    const EdgeId e = net.out_edges(node)[i];
    const NodeId to = net.arc_to(e);
    if (net.residual(e) <= 0 || level[to] != level[node] + 1) continue;
    const std::int64_t pushed = augment(
        net, to, sink, std::min(limit, net.residual(e)), level, next_edge);
    if (pushed > 0) {
      net.push(e, pushed);
      return pushed;
    }
  }
  return 0;
}

}  // namespace

std::int64_t Dinic::solve(FlowNetwork& net, NodeId source, NodeId sink) {
  CCDN_REQUIRE(source < net.num_nodes() && sink < net.num_nodes(),
               "source/sink out of range");
  CCDN_REQUIRE(source != sink, "source equals sink");
  std::int64_t total = 0;
  std::vector<std::int32_t> level;
  std::vector<std::size_t> next_edge;
  while (build_levels(net, source, sink, level)) {
    next_edge.assign(net.num_nodes(), 0);
    while (true) {
      const std::int64_t pushed =
          augment(net, source, sink, std::numeric_limits<std::int64_t>::max(),
                  level, next_edge);
      if (pushed == 0) break;
      total += pushed;
    }
  }
  return total;
}

}  // namespace ccdn
