// Reduced exchange network for cross-shard reconciliation.
//
// The zone-sharded scheduler (DESIGN.md §3.12) solves each shard's balance
// graph independently, which leaves exactly one kind of imbalance on the
// table: an overloaded *boundary* hotspot that chose its receivers blind
// to closer slack across a shard cut. After the per-shard solves commit,
// the orchestrator collects the boundary senders' residual overload and
// the residual slack of every hotspot within the exchange radius, and this
// module solves min-cost max-flow over that reduced network — a band
// around the shard cuts, a fraction of the global problem's size. The
// orchestrator calls it once per θ step of a distance sweep so the
// exchange honours the same closest-first commitment discipline as the
// global solve.
//
// This layer is deliberately generic (plain node ids, supplies, arcs): flow
// cannot depend on core, and the same reduction serves both the flat and
// the virtual-region sharded schemes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "flow/mcmf.h"

namespace ccdn {

/// A feasible sender→receiver arc of the reduced network, in caller
/// (global hotspot) ids. `capacity` is min(residual sender slack, residual
/// receiver slack) at build time, matching the Gd edge shape.
struct ExchangeArc {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  double cost_km = 0.0;
  std::int64_t capacity = 0;
};

/// One unit-flow entry of the exchange solution, in caller ids.
struct ExchangeFlow {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::int64_t amount = 0;
};

struct ExchangeResult {
  /// Positive-amount flows, ordered by (from, to), merged per pair.
  std::vector<ExchangeFlow> flows;
  std::int64_t moved = 0;
  double cost_km = 0.0;
};

/// Solve the reduced network: source → each distinct sender (cap = its
/// `supply`), per-arc sender → receiver edges (cap/cost from the arc), each
/// distinct receiver → sink (cap = its `demand`). `supply` and `demand` are
/// indexed by caller id and must cover every id appearing in `arcs`.
/// Deterministic: node ids are assigned in ascending caller-id order and
/// arcs are added in caller order.
[[nodiscard]] ExchangeResult solve_exchange(
    std::span<const std::int64_t> supply, std::span<const std::int64_t> demand,
    std::span<const ExchangeArc> arcs,
    McmfStrategy strategy = McmfStrategy::kSpfa);

}  // namespace ccdn
