#include "flow/mcmf.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

namespace ccdn {

namespace {

// Path costs are sums of km distances; treat differences below this as zero
// to keep the search robust against floating-point noise.
constexpr double kEps = 1e-9;

std::int64_t bottleneck_along_path(const FlowNetwork& net, NodeId source,
                                   NodeId sink,
                                   const std::vector<EdgeId>& parent_edge) {
  std::int64_t bottleneck = std::numeric_limits<std::int64_t>::max();
  NodeId node = sink;
  while (node != source) {
    const EdgeId e = parent_edge[node];
    CCDN_ASSERT(net.edge(e).to == node,
                "parent edge does not enter its node");
    CCDN_ASSERT(net.edge(e).capacity > 0,
                "saturated edge on augmenting path");
    bottleneck = std::min(bottleneck, net.edge(e).capacity);
    node = net.edge(e).from;
  }
  return bottleneck;
}

double apply_path(FlowNetwork& net, NodeId source, NodeId sink,
                  const std::vector<EdgeId>& parent_edge, std::int64_t amount) {
  double path_cost = 0.0;
  NodeId node = sink;
  while (node != source) {
    const EdgeId e = parent_edge[node];
    CCDN_ASSERT(amount <= net.edge(e).capacity,
                "augmenting beyond the path bottleneck");
    path_cost += net.edge(e).cost;
    node = net.edge(e).from;
    net.push(e, amount);
  }
  return path_cost;
}

}  // namespace

bool McmfSolver::spfa(const FlowNetwork& net, NodeId source, NodeId sink) {
  const std::size_t n = net.num_nodes();
  state_.begin_search(n);
  const std::uint32_t stamp = state_.stamp;
  // The in_queue flags bound occupancy at n, so a ring buffer of n + 1 slots
  // gives deque semantics (SLF needs push_front) without deque allocations.
  // Every enqueued node is eventually dequeued, so the flags are all zero
  // again when the search ends and never need resetting.
  const std::size_t cap = n + 1;
  state_.queue.resize(cap);
  std::size_t head = 0;
  std::size_t tail = 0;
  const auto queue_empty = [&] { return head == tail; };
  const auto push_back = [&](NodeId v) {
    state_.queue[tail] = v;
    tail = (tail + 1) % cap;
  };
  const auto push_front = [&](NodeId v) {
    head = (head + cap - 1) % cap;
    state_.queue[head] = v;
  };

  state_.dist[source] = 0.0;
  state_.seen[source] = stamp;
  state_.touched.push_back(source);
  push_back(source);
  state_.in_queue[source] = 1;
  while (!queue_empty()) {
    const NodeId node = state_.queue[head];
    head = (head + 1) % cap;
    state_.in_queue[node] = 0;
    for (const EdgeId e : net.out_edges(node)) {
      const auto& edge = net.edge(e);
      if (edge.capacity <= 0) continue;
      const double candidate = state_.dist[node] + edge.cost;
      if (state_.seen[edge.to] != stamp ||
          candidate + kEps < state_.dist[edge.to]) {
        if (state_.seen[edge.to] != stamp) {
          state_.touched.push_back(edge.to);
        }
        state_.dist[edge.to] = candidate;
        state_.parent_edge[edge.to] = e;
        state_.seen[edge.to] = stamp;
        if (!state_.in_queue[edge.to]) {
          // SLF heuristic: jump the queue when promising.
          if (!queue_empty() && candidate < state_.dist[state_.queue[head]]) {
            push_front(edge.to);
          } else {
            push_back(edge.to);
          }
          state_.in_queue[edge.to] = 1;
        }
      }
    }
  }
  return state_.seen[sink] == stamp;
}

bool McmfSolver::dijkstra(const FlowNetwork& net, NodeId source, NodeId sink) {
  const std::size_t n = net.num_nodes();
  state_.begin_search(n);
  const std::uint32_t stamp = state_.stamp;
  auto& heap = state_.heap;
  heap.clear();
  const auto min_first = std::greater<>{};
  state_.dist[source] = 0.0;
  state_.seen[source] = stamp;
  state_.touched.push_back(source);
  heap.emplace_back(0.0, source);
  while (!heap.empty()) {
    // Early settle: once the sink is seen and nothing left in the heap can
    // beat its tentative label, that label is final — skip the remaining
    // pops (typically a plateau of equal-cost senders).
    if (state_.seen[sink] == stamp &&
        heap.front().first >= state_.dist[sink]) {
      state_.settled[sink] = stamp;
      return true;
    }
    const auto [d, node] = heap.front();
    std::pop_heap(heap.begin(), heap.end(), min_first);
    heap.pop_back();
    if (state_.settled[node] == stamp) continue;
    state_.settled[node] = stamp;
    // Early exit: once the sink settles its shortest path is final, and
    // every node still in the heap has a tentative distance >= dist[sink],
    // which is exactly what update_potentials' capping rule needs. This is
    // the payoff of carrying valid potentials: the search stops at the
    // sink instead of settling the whole graph.
    if (node == sink) return true;
    for (const EdgeId e : net.out_edges(node)) {
      const auto& edge = net.edge(e);
      if (edge.capacity <= 0 || state_.settled[edge.to] == stamp) continue;
      double reduced = edge.cost + potential_[node] - potential_[edge.to];
      // Valid potentials keep every residual reduced cost non-negative; a
      // real violation means the potential update went wrong and Dijkstra's
      // greedy settling would silently return suboptimal (non-min-cost)
      // paths, so fail loudly instead of clamping it away.
      CCDN_ENSURE(reduced >= -kEps, "negative reduced cost: stale potentials");
      reduced = std::max(0.0, reduced);  // absorb float noise within kEps
      const double candidate = d + reduced;
      // Prune labels that cannot beat the sink's tentative distance: any
      // path extending them costs at least as much as the path already
      // recorded to the sink, and update_potentials caps unreached nodes at
      // dist[sink], so skipping the record keeps the potentials valid.
      if (edge.to != sink && state_.seen[sink] == stamp &&
          candidate >= state_.dist[sink]) {
        continue;
      }
      if (state_.seen[edge.to] != stamp ||
          candidate + kEps < state_.dist[edge.to]) {
        if (state_.seen[edge.to] != stamp) {
          state_.touched.push_back(edge.to);
        }
        state_.dist[edge.to] = candidate;
        state_.parent_edge[edge.to] = e;
        state_.seen[edge.to] = stamp;
        // Dead-end prune: a node with no outgoing arcs cannot extend any
        // path, so record its label (update_potentials needs it) but skip
        // the heap. With drop_terminal_arcs this covers every sender whose
        // candidate pairs are all committed or not yet visible.
        if (edge.to == sink || !net.out_edges(edge.to).empty()) {
          heap.emplace_back(candidate, edge.to);
          std::push_heap(heap.begin(), heap.end(), min_first);
        }
      }
    }
  }
  return state_.settled[sink] == stamp;
}

void McmfSolver::update_potentials(NodeId sink) {
  const std::uint32_t stamp = state_.stamp;
  if (state_.settled[sink] == stamp) {
    // Johnson's update adds min(dist, dist[sink]) to every seen node and
    // dist[sink] to every other node: the cap is valid because heap
    // residents sit at >= dist[sink], the seen nodes below that are
    // dead-end-pruned (no outgoing arcs, so their low label constrains
    // nothing), and every unseen node's skipped relaxation was
    // sink-bound-pruned. But a *uniform* shift cancels out of every
    // reduced cost, so subtract the dist[sink] baseline and only the seen
    // nodes need touching: O(|seen|) instead of O(n). Absolute potentials
    // drift (the source's sinks by dist[sink] per search); only
    // differences are ever read.
    const double d_sink = state_.dist[sink];
    for (const NodeId v : state_.touched) {
      potential_[v] += std::min(state_.dist[v], d_sink) - d_sink;
    }
    return;
  }
  // Exhausted search (no path to the sink): settled nodes take their final
  // distance, everything else the largest settled distance — again shifted
  // by that baseline so untouched nodes stay untouched. Edges among
  // unreached nodes shift uniformly, edges from unreached to reached only
  // gain slack, and reached→unreached residual edges cannot exist here.
  double max_reached = 0.0;
  for (const NodeId v : state_.touched) {
    if (state_.settled[v] == stamp) {
      max_reached = std::max(max_reached, state_.dist[v]);
    }
  }
  for (const NodeId v : state_.touched) {
    if (state_.settled[v] == stamp) {
      potential_[v] += state_.dist[v] - max_reached;
    }
  }
}

void McmfSolver::reset_potentials(std::size_t num_nodes) {
  potential_.assign(num_nodes, 0.0);
}

void McmfSolver::ensure_potentials(std::size_t num_nodes) {
  if (potential_.size() == num_nodes) return;
  if (potential_.empty()) {
    potential_.assign(num_nodes, 0.0);
    return;
  }
  if (potential_.size() > num_nodes) {
    // Shrinking: the dropped tail held transient nodes (a previous epoch's
    // guide nodes) that no longer exist — their prices constrain nothing.
    potential_.resize(num_nodes);
    return;
  }
  // Growing: price the fresh nodes at the largest carried potential, the
  // same convention reprice() applies to unreached nodes. Arcs into them
  // from any node priced at or below the maximum start non-negative.
  const double fill =
      *std::max_element(potential_.begin(), potential_.end());
  potential_.resize(num_nodes, fill);
}

void McmfSolver::harvest_potentials(const FlowNetwork& net) {
  const std::uint32_t stamp = state_.stamp;
  double max_reached = 0.0;
  for (const NodeId v : state_.touched) {
    if (state_.seen[v] == stamp) {
      max_reached = std::max(max_reached, state_.dist[v]);
    }
  }
  potential_.assign(net.num_nodes(), max_reached);
  for (const NodeId v : state_.touched) {
    if (state_.seen[v] == stamp && v < potential_.size()) {
      potential_[v] = state_.dist[v];
    }
  }
}

bool McmfSolver::potentials_valid_for(const FlowNetwork& net,
                                      EdgeId first_edge) const {
  for (EdgeId e = first_edge; e < 2 * net.num_edges(); ++e) {
    const auto& edge = net.edge(e);
    if (edge.capacity <= 0) continue;
    if (edge.from >= potential_.size() || edge.to >= potential_.size()) {
      return false;
    }
    const double reduced =
        edge.cost + potential_[edge.from] - potential_[edge.to];
    if (reduced < -kEps) return false;
  }
  return true;
}

void McmfSolver::reprice(const FlowNetwork& net, NodeId source) {
  ++reprices_;
  spfa(net, source, source);  // sink unused: full shortest-path tree
  const std::uint32_t stamp = state_.stamp;
  double max_reached = 0.0;
  for (std::size_t v = 0; v < net.num_nodes(); ++v) {
    if (state_.seen[v] == stamp) {
      max_reached = std::max(max_reached, state_.dist[v]);
    }
  }
  potential_.resize(net.num_nodes());
  for (std::size_t v = 0; v < net.num_nodes(); ++v) {
    potential_[v] = state_.seen[v] == stamp ? state_.dist[v] : max_reached;
  }
}

void McmfSolver::reprice_from(const FlowNetwork& net, EdgeId first_edge,
                              std::span<const EdgeId> clamp_arcs) {
  CCDN_REQUIRE(potential_.size() == net.num_nodes(),
               "potentials not sized for this network");
  const std::size_t n = net.num_nodes();
  state_.in_queue.assign(n, 0);
  const std::size_t cap = n + 1;
  state_.queue.resize(cap);
  std::size_t head = 0;
  std::size_t tail = 0;
  const auto enqueue = [&](NodeId v) {
    if (state_.in_queue[v]) return;
    state_.queue[tail] = v;
    tail = (tail + 1) % cap;
    state_.in_queue[v] = 1;
  };

  // Expected maintenance first: clamp the heads of the named old arcs down
  // to tail potential + cost, so the suffix scan below already sees the
  // corrected values. Not counted as a reprice — drift on arcs into
  // dormant nodes is the normal price of the O(|seen|) potential update.
  for (const EdgeId e : clamp_arcs) {
    const auto& edge = net.edge(e);
    if (edge.capacity <= 0) continue;
    const double candidate = potential_[edge.from] + edge.cost;
    if (candidate + kEps < potential_[edge.to]) {
      potential_[edge.to] = candidate;
      enqueue(edge.to);
    }
  }

  bool violated = false;
  for (EdgeId e = first_edge; e < 2 * net.num_edges(); ++e) {
    const auto& edge = net.edge(e);
    if (edge.capacity <= 0) continue;
    const double candidate = potential_[edge.from] + edge.cost;
    if (candidate + kEps < potential_[edge.to]) {
      potential_[edge.to] = candidate;
      enqueue(edge.to);
      violated = true;
    }
  }
  if (head == tail) return;  // everything already prices non-negatively
  if (violated) ++reprices_;
  while (head != tail) {
    const NodeId node = state_.queue[head];
    head = (head + 1) % cap;
    state_.in_queue[node] = 0;
    for (const EdgeId e : net.out_edges(node)) {
      const auto& edge = net.edge(e);
      if (edge.capacity <= 0) continue;
      const double candidate = potential_[node] + edge.cost;
      if (candidate + kEps < potential_[edge.to]) {
        potential_[edge.to] = candidate;
        enqueue(edge.to);
      }
    }
  }
}

McmfResult McmfSolver::augment(FlowNetwork& net, NodeId source, NodeId sink,
                               std::int64_t flow_limit) {
  CCDN_REQUIRE(source < net.num_nodes() && sink < net.num_nodes(),
               "source/sink out of range");
  CCDN_REQUIRE(source != sink, "source equals sink");
  CCDN_REQUIRE(flow_limit >= 0, "negative flow limit");
  if (strategy_ == McmfStrategy::kDijkstraPotentials) {
    CCDN_REQUIRE(potential_.size() == net.num_nodes(),
                 "potentials not sized for this network; call "
                 "reset_potentials() or reprice() first");
  }

  McmfResult result;
  while (result.flow < flow_limit) {
    bool found = false;
    if (strategy_ == McmfStrategy::kSpfa) {
      found = spfa(net, source, sink);
    } else {
      found = dijkstra(net, source, sink);
    }
    if (!found) break;
    if (strategy_ == McmfStrategy::kDijkstraPotentials) {
      update_potentials(sink);
    }
    const std::int64_t room = flow_limit - result.flow;
    const std::int64_t amount = std::min(
        room, bottleneck_along_path(net, source, sink, state_.parent_edge));
    CCDN_ENSURE(amount > 0, "augmenting path with zero bottleneck");
    const double path_cost =
        apply_path(net, source, sink, state_.parent_edge, amount);
    result.flow += amount;
    result.cost += path_cost * static_cast<double>(amount);
  }
  return result;
}

McmfResult MinCostMaxFlow::solve(FlowNetwork& net, NodeId source, NodeId sink,
                                 McmfStrategy strategy) {
  return solve_up_to(net, source, sink,
                     std::numeric_limits<std::int64_t>::max(), strategy);
}

McmfResult MinCostMaxFlow::solve_up_to(FlowNetwork& net, NodeId source,
                                       NodeId sink, std::int64_t flow_limit,
                                       McmfStrategy strategy) {
  McmfSolver solver(strategy);
  // Forward costs are non-negative, so zero potentials are valid initially
  // for the Dijkstra strategy.
  solver.reset_potentials(net.num_nodes());
  return solver.augment(net, source, sink, flow_limit);
}

}  // namespace ccdn
