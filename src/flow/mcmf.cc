#include "flow/mcmf.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>
#include <vector>

namespace ccdn {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// Path costs are sums of km distances; treat differences below this as zero
// to keep the search robust against floating-point noise.
constexpr double kEps = 1e-9;

struct SearchState {
  std::vector<double> dist;
  std::vector<EdgeId> parent_edge;
  std::vector<bool> reached;
};

/// SPFA shortest path by cost over residual edges. Returns true if the sink
/// is reachable.
bool spfa(const FlowNetwork& net, NodeId source, NodeId sink,
          SearchState& state) {
  const std::size_t n = net.num_nodes();
  state.dist.assign(n, kInf);
  state.parent_edge.assign(n, 0);
  state.reached.assign(n, false);
  std::vector<bool> in_queue(n, false);
  std::deque<NodeId> queue;
  state.dist[source] = 0.0;
  state.reached[source] = true;
  queue.push_back(source);
  in_queue[source] = true;
  while (!queue.empty()) {
    const NodeId node = queue.front();
    queue.pop_front();
    in_queue[node] = false;
    for (const EdgeId e : net.out_edges(node)) {
      const auto& edge = net.edge(e);
      if (edge.capacity <= 0) continue;
      const double candidate = state.dist[node] + edge.cost;
      if (candidate + kEps < state.dist[edge.to]) {
        state.dist[edge.to] = candidate;
        state.parent_edge[edge.to] = e;
        state.reached[edge.to] = true;
        if (!in_queue[edge.to]) {
          // SLF heuristic: jump the queue when promising.
          if (!queue.empty() && candidate < state.dist[queue.front()]) {
            queue.push_front(edge.to);
          } else {
            queue.push_back(edge.to);
          }
          in_queue[edge.to] = true;
        }
      }
    }
  }
  return state.reached[sink] && state.dist[sink] < kInf;
}

/// Dijkstra over reduced costs w.r.t. potentials. Requires potentials that
/// make every residual edge's reduced cost non-negative.
bool dijkstra(const FlowNetwork& net, NodeId source, NodeId sink,
              const std::vector<double>& potential, SearchState& state) {
  const std::size_t n = net.num_nodes();
  state.dist.assign(n, kInf);
  state.parent_edge.assign(n, 0);
  state.reached.assign(n, false);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  state.dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, node] = heap.top();
    heap.pop();
    if (state.reached[node]) continue;
    state.reached[node] = true;
    for (const EdgeId e : net.out_edges(node)) {
      const auto& edge = net.edge(e);
      if (edge.capacity <= 0 || state.reached[edge.to]) continue;
      double reduced = edge.cost + potential[node] - potential[edge.to];
      // Valid potentials keep every residual reduced cost non-negative; a
      // real violation means the potential update went wrong and Dijkstra's
      // greedy settling would silently return suboptimal (non-min-cost)
      // paths, so fail loudly instead of clamping it away.
      CCDN_ENSURE(reduced >= -kEps, "negative reduced cost: stale potentials");
      reduced = std::max(0.0, reduced);  // absorb float noise within kEps
      const double candidate = d + reduced;
      if (candidate + kEps < state.dist[edge.to]) {
        state.dist[edge.to] = candidate;
        state.parent_edge[edge.to] = e;
        heap.emplace(candidate, edge.to);
      }
    }
  }
  return state.reached[sink];
}

std::int64_t bottleneck_along_path(const FlowNetwork& net, NodeId source,
                                   NodeId sink, const SearchState& state) {
  std::int64_t bottleneck = std::numeric_limits<std::int64_t>::max();
  NodeId node = sink;
  while (node != source) {
    const EdgeId e = state.parent_edge[node];
    bottleneck = std::min(bottleneck, net.edge(e).capacity);
    node = net.edge(e).from;
  }
  return bottleneck;
}

double apply_path(FlowNetwork& net, NodeId source, NodeId sink,
                  const SearchState& state, std::int64_t amount) {
  double path_cost = 0.0;
  NodeId node = sink;
  while (node != source) {
    const EdgeId e = state.parent_edge[node];
    path_cost += net.edge(e).cost;
    node = net.edge(e).from;
    net.push(e, amount);
  }
  return path_cost;
}

}  // namespace

McmfResult MinCostMaxFlow::solve(FlowNetwork& net, NodeId source, NodeId sink,
                                 McmfStrategy strategy) {
  return solve_up_to(net, source, sink,
                     std::numeric_limits<std::int64_t>::max(), strategy);
}

McmfResult MinCostMaxFlow::solve_up_to(FlowNetwork& net, NodeId source,
                                       NodeId sink, std::int64_t flow_limit,
                                       McmfStrategy strategy) {
  CCDN_REQUIRE(source < net.num_nodes() && sink < net.num_nodes(),
               "source/sink out of range");
  CCDN_REQUIRE(source != sink, "source equals sink");
  CCDN_REQUIRE(flow_limit >= 0, "negative flow limit");

  McmfResult result;
  SearchState state;
  std::vector<double> potential(net.num_nodes(), 0.0);
  // Forward costs are non-negative, so zero potentials are valid initially
  // for the Dijkstra strategy.
  while (result.flow < flow_limit) {
    bool found = false;
    if (strategy == McmfStrategy::kSpfa) {
      found = spfa(net, source, sink, state);
    } else {
      found = dijkstra(net, source, sink, potential, state);
    }
    if (!found) break;
    if (strategy == McmfStrategy::kDijkstraPotentials) {
      // Nodes the search did not reach have no residual path from the
      // source *this* iteration, but augmentation can create one later.
      // Leaving their potentials untouched would let reduced costs of
      // edges into them go negative; offsetting by the largest finite
      // distance keeps every residual edge's reduced cost non-negative
      // (edges among unreached nodes shift uniformly, edges from unreached
      // to reached only gain slack, and reached→unreached residual edges
      // cannot exist at this point).
      double max_reached = 0.0;
      for (std::size_t v = 0; v < net.num_nodes(); ++v) {
        if (state.reached[v]) {
          max_reached = std::max(max_reached, state.dist[v]);
        }
      }
      for (std::size_t v = 0; v < net.num_nodes(); ++v) {
        potential[v] += state.reached[v] ? state.dist[v] : max_reached;
      }
    }
    const std::int64_t room = flow_limit - result.flow;
    const std::int64_t amount =
        std::min(room, bottleneck_along_path(net, source, sink, state));
    CCDN_ENSURE(amount > 0, "augmenting path with zero bottleneck");
    const double path_cost = apply_path(net, source, sink, state, amount);
    result.flow += amount;
    result.cost += path_cost * static_cast<double>(amount);
  }
  return result;
}

}  // namespace ccdn
