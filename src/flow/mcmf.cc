#include "flow/mcmf.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

namespace ccdn {

namespace {

// Path costs are sums of km distances; treat differences below this as zero
// to keep the search robust against floating-point noise. The integer-cost
// engine has no analogue: quantized costs compare exactly.
constexpr double kEps = 1e-9;

std::int64_t bottleneck_along_path(const FlowNetwork& net, NodeId source,
                                   NodeId sink,
                                   std::span<const EdgeId> parent_edge) {
  std::int64_t bottleneck = std::numeric_limits<std::int64_t>::max();
  NodeId node = sink;
  while (node != source) {
    const EdgeId e = parent_edge[node];
    CCDN_ASSERT(net.arc_to(e) == node, "parent edge does not enter its node");
    CCDN_ASSERT(net.residual(e) > 0, "saturated edge on augmenting path");
    bottleneck = std::min(bottleneck, net.residual(e));
    node = net.arc_from(e);
  }
  return bottleneck;
}

double apply_path(FlowNetwork& net, NodeId source, NodeId sink,
                  std::span<const EdgeId> parent_edge, std::int64_t amount) {
  double path_cost = 0.0;
  NodeId node = sink;
  while (node != source) {
    const EdgeId e = parent_edge[node];
    CCDN_ASSERT(amount <= net.residual(e),
                "augmenting beyond the path bottleneck");
    path_cost += net.cost(e);
    node = net.arc_from(e);
    net.push(e, amount);
  }
  return path_cost;
}

}  // namespace

bool McmfSolver::spfa(const FlowNetwork& net, NodeId source, NodeId sink) {
  const std::size_t n = net.num_nodes();
  state_.begin_search(n, /*integer=*/false);
  const std::uint32_t stamp = state_.stamp;
  // The in_queue flags bound occupancy at n, so a ring buffer of n + 1 slots
  // gives deque semantics (SLF needs push_front) without deque allocations.
  // Every enqueued node is eventually dequeued, so the flags are all zero
  // again when the search ends and never need resetting.
  const std::size_t cap = n + 1;
  state_.queue.resize(cap);
  std::size_t head = 0;
  std::size_t tail = 0;
  const auto queue_empty = [&] { return head == tail; };
  const auto push_back = [&](NodeId v) {
    state_.queue[tail] = v;
    tail = (tail + 1) % cap;
  };
  const auto push_front = [&](NodeId v) {
    head = (head + cap - 1) % cap;
    state_.queue[head] = v;
  };

  state_.dist[source] = 0.0;
  state_.seen[source] = stamp;
  state_.touched.push_back(source);
  push_back(source);
  state_.in_queue[source] = 1;
  while (!queue_empty()) {
    const NodeId node = state_.queue[head];
    head = (head + 1) % cap;
    state_.in_queue[node] = 0;
    for (const EdgeId e : net.out_edges(node)) {
      if (net.residual(e) <= 0) continue;
      const NodeId to = net.arc_to(e);
      const double candidate = state_.dist[node] + net.cost(e);
      if (state_.seen[to] != stamp || candidate + kEps < state_.dist[to]) {
        if (state_.seen[to] != stamp) {
          state_.touched.push_back(to);
        }
        state_.dist[to] = candidate;
        state_.parent_edge[to] = e;
        state_.seen[to] = stamp;
        if (!state_.in_queue[to]) {
          // SLF heuristic: jump the queue when promising.
          if (!queue_empty() && candidate < state_.dist[state_.queue[head]]) {
            push_front(to);
          } else {
            push_back(to);
          }
          state_.in_queue[to] = 1;
        }
      }
    }
  }
  return state_.seen[sink] == stamp;
}

bool McmfSolver::spfa_int(const FlowNetwork& net, NodeId source, NodeId sink) {
  const std::size_t n = net.num_nodes();
  state_.begin_search(n, /*integer=*/true);
  const std::uint32_t stamp = state_.stamp;
  const std::size_t cap = n + 1;
  state_.queue.resize(cap);
  std::size_t head = 0;
  std::size_t tail = 0;
  const auto queue_empty = [&] { return head == tail; };
  const auto push_back = [&](NodeId v) {
    state_.queue[tail] = v;
    tail = (tail + 1) % cap;
  };
  const auto push_front = [&](NodeId v) {
    head = (head + cap - 1) % cap;
    state_.queue[head] = v;
  };

  state_.idist[source] = 0;
  state_.seen[source] = stamp;
  state_.touched.push_back(source);
  push_back(source);
  state_.in_queue[source] = 1;
  while (!queue_empty()) {
    const NodeId node = state_.queue[head];
    head = (head + 1) % cap;
    state_.in_queue[node] = 0;
    for (const EdgeId e : net.out_edges(node)) {
      if (net.residual(e) <= 0) continue;
      const NodeId to = net.arc_to(e);
      const std::int64_t candidate = state_.idist[node] + net.qcost(e);
      // Exact comparison — no kEps. Quantization already absorbed the
      // sub-resolution noise the double engine tolerates at relax time.
      if (state_.seen[to] != stamp || candidate < state_.idist[to]) {
        if (state_.seen[to] != stamp) {
          state_.touched.push_back(to);
        }
        state_.idist[to] = candidate;
        state_.parent_edge[to] = e;
        state_.seen[to] = stamp;
        if (!state_.in_queue[to]) {
          if (!queue_empty() &&
              candidate < state_.idist[state_.queue[head]]) {
            push_front(to);
          } else {
            push_back(to);
          }
          state_.in_queue[to] = 1;
        }
      }
    }
  }
  return state_.seen[sink] == stamp;
}

bool McmfSolver::dijkstra(const FlowNetwork& net, NodeId source, NodeId sink) {
  const std::size_t n = net.num_nodes();
  state_.begin_search(n, /*integer=*/false);
  const std::uint32_t stamp = state_.stamp;
  auto& heap = state_.heap;
  heap.clear();
  const auto min_first = std::greater<>{};
  state_.dist[source] = 0.0;
  state_.seen[source] = stamp;
  state_.touched.push_back(source);
  heap.emplace_back(0.0, source);
  while (!heap.empty()) {
    // Early settle: once the sink is seen and nothing left in the heap can
    // beat its tentative label, that label is final — skip the remaining
    // pops (typically a plateau of equal-cost senders).
    if (state_.seen[sink] == stamp &&
        heap.front().first >= state_.dist[sink]) {
      state_.settled[sink] = stamp;
      return true;
    }
    const auto [d, node] = heap.front();
    std::pop_heap(heap.begin(), heap.end(), min_first);
    heap.pop_back();
    if (state_.settled[node] == stamp) continue;
    state_.settled[node] = stamp;
    // Early exit: once the sink settles its shortest path is final, and
    // every node still in the heap has a tentative distance >= dist[sink],
    // which is exactly what update_potentials' capping rule needs. This is
    // the payoff of carrying valid potentials: the search stops at the
    // sink instead of settling the whole graph.
    if (node == sink) return true;
    for (const EdgeId e : net.out_edges(node)) {
      const NodeId to = net.arc_to(e);
      if (net.residual(e) <= 0 || state_.settled[to] == stamp) continue;
      double reduced = net.cost(e) + potential_[node] - potential_[to];
      // Valid potentials keep every residual reduced cost non-negative; a
      // real violation means the potential update went wrong and Dijkstra's
      // greedy settling would silently return suboptimal (non-min-cost)
      // paths, so fail loudly instead of clamping it away.
      CCDN_ENSURE(reduced >= -kEps, "negative reduced cost: stale potentials");
      reduced = std::max(0.0, reduced);  // absorb float noise within kEps
      const double candidate = d + reduced;
      // Prune labels that cannot beat the sink's tentative distance: any
      // path extending them costs at least as much as the path already
      // recorded to the sink, and update_potentials caps unreached nodes at
      // dist[sink], so skipping the record keeps the potentials valid.
      if (to != sink && state_.seen[sink] == stamp &&
          candidate >= state_.dist[sink]) {
        continue;
      }
      if (state_.seen[to] != stamp || candidate + kEps < state_.dist[to]) {
        if (state_.seen[to] != stamp) {
          state_.touched.push_back(to);
        }
        state_.dist[to] = candidate;
        state_.parent_edge[to] = e;
        state_.seen[to] = stamp;
        // Dead-end prune: a node with no outgoing arcs cannot extend any
        // path, so record its label (update_potentials needs it) but skip
        // the heap. With drop_terminal_arcs this covers every sender whose
        // candidate pairs are all committed or not yet visible.
        if (to == sink || !net.out_edges(to).empty()) {
          heap.emplace_back(candidate, to);
          std::push_heap(heap.begin(), heap.end(), min_first);
        }
      }
    }
  }
  return state_.settled[sink] == stamp;
}

bool McmfSolver::dijkstra_int(const FlowNetwork& net, NodeId source,
                              NodeId sink) {
  const std::size_t n = net.num_nodes();
  state_.begin_search(n, /*integer=*/true);
  const std::uint32_t stamp = state_.stamp;
  auto& rheap = state_.rheap;
  rheap.clear();
  state_.idist[source] = 0;
  state_.seen[source] = stamp;
  state_.touched.push_back(source);
  rheap.push(0, source);
  while (!rheap.empty()) {
    // The radix heap has no cheap peek, so the early-settle check runs
    // pop-then-test: keys pop in non-decreasing order, so the first popped
    // key >= idist[sink] proves the sink's label final exactly when the
    // binary-heap peek would have.
    const auto [key, node32] = rheap.pop();
    const NodeId node = node32;
    const auto d = static_cast<std::int64_t>(key);
    if (state_.settled[node] == stamp) continue;  // stale lazy-deleted entry
    if (state_.seen[sink] == stamp && d >= state_.idist[sink]) {
      state_.settled[sink] = stamp;
      return true;
    }
    state_.settled[node] = stamp;
    if (node == sink) return true;
    for (const EdgeId e : net.out_edges(node)) {
      const NodeId to = net.arc_to(e);
      if (net.residual(e) <= 0 || state_.settled[to] == stamp) continue;
      const std::int64_t reduced =
          net.qcost(e) + ipotential_[node] - ipotential_[to];
      // Exact domain: a negative reduced cost is a real invariant breach,
      // never float noise — no clamp, no tolerance.
      CCDN_ENSURE(reduced >= 0, "negative reduced cost: stale potentials");
      const std::int64_t candidate = d + reduced;
      if (to != sink && state_.seen[sink] == stamp &&
          candidate >= state_.idist[sink]) {
        continue;
      }
      if (state_.seen[to] != stamp || candidate < state_.idist[to]) {
        if (state_.seen[to] != stamp) {
          state_.touched.push_back(to);
        }
        state_.idist[to] = candidate;
        state_.parent_edge[to] = e;
        state_.seen[to] = stamp;
        if (to == sink || !net.out_edges(to).empty()) {
          rheap.push(static_cast<std::uint64_t>(candidate), to);
        }
      }
    }
  }
  return state_.settled[sink] == stamp;
}

void McmfSolver::update_potentials(NodeId sink) {
  const std::uint32_t stamp = state_.stamp;
  if (state_.settled[sink] == stamp) {
    // Johnson's update adds min(dist, dist[sink]) to every seen node and
    // dist[sink] to every other node: the cap is valid because heap
    // residents sit at >= dist[sink], the seen nodes below that are
    // dead-end-pruned (no outgoing arcs, so their low label constrains
    // nothing), and every unseen node's skipped relaxation was
    // sink-bound-pruned. But a *uniform* shift cancels out of every
    // reduced cost, so subtract the dist[sink] baseline and only the seen
    // nodes need touching: O(|seen|) instead of O(n). Absolute potentials
    // drift (the source's sinks by dist[sink] per search); only
    // differences are ever read.
    const double d_sink = state_.dist[sink];
    for (const NodeId v : state_.touched) {
      potential_[v] += std::min(state_.dist[v], d_sink) - d_sink;
    }
    return;
  }
  // Exhausted search (no path to the sink): settled nodes take their final
  // distance, everything else the largest settled distance — again shifted
  // by that baseline so untouched nodes stay untouched. Edges among
  // unreached nodes shift uniformly, edges from unreached to reached only
  // gain slack, and reached→unreached residual edges cannot exist here.
  double max_reached = 0.0;
  for (const NodeId v : state_.touched) {
    if (state_.settled[v] == stamp) {
      max_reached = std::max(max_reached, state_.dist[v]);
    }
  }
  for (const NodeId v : state_.touched) {
    if (state_.settled[v] == stamp) {
      potential_[v] += state_.dist[v] - max_reached;
    }
  }
}

void McmfSolver::update_potentials_int(NodeId sink) {
  const std::uint32_t stamp = state_.stamp;
  if (state_.settled[sink] == stamp) {
    const std::int64_t d_sink = state_.idist[sink];
    for (const NodeId v : state_.touched) {
      ipotential_[v] += std::min(state_.idist[v], d_sink) - d_sink;
    }
    return;
  }
  std::int64_t max_reached = 0;
  for (const NodeId v : state_.touched) {
    if (state_.settled[v] == stamp) {
      max_reached = std::max(max_reached, state_.idist[v]);
    }
  }
  for (const NodeId v : state_.touched) {
    if (state_.settled[v] == stamp) {
      ipotential_[v] += state_.idist[v] - max_reached;
    }
  }
}

void McmfSolver::reset_potentials(std::size_t num_nodes) {
  if (integer_) {
    ipotential_.assign(num_nodes, 0);
  } else {
    potential_.assign(num_nodes, 0.0);
  }
}

void McmfSolver::ensure_potentials(std::size_t num_nodes) {
  if (integer_) {
    if (ipotential_.size() == num_nodes) return;
    if (ipotential_.empty()) {
      ipotential_.assign(num_nodes, 0);
      return;
    }
    if (ipotential_.size() > num_nodes) {
      ipotential_.resize(num_nodes);
      return;
    }
    const std::int64_t fill =
        *std::max_element(ipotential_.begin(), ipotential_.end());
    ipotential_.resize(num_nodes, fill);
    return;
  }
  if (potential_.size() == num_nodes) return;
  if (potential_.empty()) {
    potential_.assign(num_nodes, 0.0);
    return;
  }
  if (potential_.size() > num_nodes) {
    // Shrinking: the dropped tail held transient nodes (a previous epoch's
    // guide nodes) that no longer exist — their prices constrain nothing.
    potential_.resize(num_nodes);
    return;
  }
  // Growing: price the fresh nodes at the largest carried potential, the
  // same convention reprice() applies to unreached nodes. Arcs into them
  // from any node priced at or below the maximum start non-negative.
  const double fill =
      *std::max_element(potential_.begin(), potential_.end());
  potential_.resize(num_nodes, fill);
}

void McmfSolver::harvest_potentials(const FlowNetwork& net) {
  const std::uint32_t stamp = state_.stamp;
  if (integer_) {
    std::int64_t max_reached = 0;
    for (const NodeId v : state_.touched) {
      if (state_.seen[v] == stamp) {
        max_reached = std::max(max_reached, state_.idist[v]);
      }
    }
    ipotential_.assign(net.num_nodes(), max_reached);
    for (const NodeId v : state_.touched) {
      if (state_.seen[v] == stamp && v < ipotential_.size()) {
        ipotential_[v] = state_.idist[v];
      }
    }
    return;
  }
  double max_reached = 0.0;
  for (const NodeId v : state_.touched) {
    if (state_.seen[v] == stamp) {
      max_reached = std::max(max_reached, state_.dist[v]);
    }
  }
  potential_.assign(net.num_nodes(), max_reached);
  for (const NodeId v : state_.touched) {
    if (state_.seen[v] == stamp && v < potential_.size()) {
      potential_[v] = state_.dist[v];
    }
  }
}

bool McmfSolver::potentials_valid_for(const FlowNetwork& net,
                                      EdgeId first_edge) const {
  const auto storage_end = static_cast<EdgeId>(2 * net.num_edges());
  if (integer_) {
    for (EdgeId e = first_edge; e < storage_end; ++e) {
      if (net.residual(e) <= 0) continue;
      const NodeId from = net.arc_from(e);
      const NodeId to = net.arc_to(e);
      if (from >= ipotential_.size() || to >= ipotential_.size()) {
        return false;
      }
      if (net.qcost(e) + ipotential_[from] - ipotential_[to] < 0) {
        return false;
      }
    }
    return true;
  }
  for (EdgeId e = first_edge; e < storage_end; ++e) {
    if (net.residual(e) <= 0) continue;
    const NodeId from = net.arc_from(e);
    const NodeId to = net.arc_to(e);
    if (from >= potential_.size() || to >= potential_.size()) {
      return false;
    }
    const double reduced = net.cost(e) + potential_[from] - potential_[to];
    if (reduced < -kEps) return false;
  }
  return true;
}

void McmfSolver::reprice(const FlowNetwork& net, NodeId source) {
  ++reprices_;
  if (integer_) {
    spfa_int(net, source, source);  // sink unused: full shortest-path tree
    const std::uint32_t stamp = state_.stamp;
    std::int64_t max_reached = 0;
    for (std::size_t v = 0; v < net.num_nodes(); ++v) {
      if (state_.seen[v] == stamp) {
        max_reached = std::max(max_reached, state_.idist[v]);
      }
    }
    ipotential_.resize(net.num_nodes());
    for (std::size_t v = 0; v < net.num_nodes(); ++v) {
      ipotential_[v] =
          state_.seen[v] == stamp ? state_.idist[v] : max_reached;
    }
    return;
  }
  spfa(net, source, source);  // sink unused: full shortest-path tree
  const std::uint32_t stamp = state_.stamp;
  double max_reached = 0.0;
  for (std::size_t v = 0; v < net.num_nodes(); ++v) {
    if (state_.seen[v] == stamp) {
      max_reached = std::max(max_reached, state_.dist[v]);
    }
  }
  potential_.resize(net.num_nodes());
  for (std::size_t v = 0; v < net.num_nodes(); ++v) {
    potential_[v] = state_.seen[v] == stamp ? state_.dist[v] : max_reached;
  }
}

void McmfSolver::reprice_from(const FlowNetwork& net, EdgeId first_edge,
                              std::span<const EdgeId> clamp_arcs) {
  if (integer_) {
    CCDN_REQUIRE(ipotential_.size() == net.num_nodes(),
                 "potentials not sized for this network");
    const std::size_t n = net.num_nodes();
    state_.in_queue.assign(n, 0);
    const std::size_t cap = n + 1;
    state_.queue.resize(cap);
    std::size_t head = 0;
    std::size_t tail = 0;
    const auto enqueue = [&](NodeId v) {
      if (state_.in_queue[v]) return;
      state_.queue[tail] = v;
      tail = (tail + 1) % cap;
      state_.in_queue[v] = 1;
    };

    for (const EdgeId e : clamp_arcs) {
      if (net.residual(e) <= 0) continue;
      const std::int64_t candidate =
          ipotential_[net.arc_from(e)] + net.qcost(e);
      if (candidate < ipotential_[net.arc_to(e)]) {
        ipotential_[net.arc_to(e)] = candidate;
        enqueue(net.arc_to(e));
      }
    }

    bool violated = false;
    for (EdgeId e = first_edge; e < 2 * net.num_edges(); ++e) {
      if (net.residual(e) <= 0) continue;
      const std::int64_t candidate =
          ipotential_[net.arc_from(e)] + net.qcost(e);
      if (candidate < ipotential_[net.arc_to(e)]) {
        ipotential_[net.arc_to(e)] = candidate;
        enqueue(net.arc_to(e));
        violated = true;
      }
    }
    if (head == tail) return;
    if (violated) ++reprices_;
    while (head != tail) {
      const NodeId node = state_.queue[head];
      head = (head + 1) % cap;
      state_.in_queue[node] = 0;
      for (const EdgeId e : net.out_edges(node)) {
        if (net.residual(e) <= 0) continue;
        const NodeId to = net.arc_to(e);
        const std::int64_t candidate = ipotential_[node] + net.qcost(e);
        if (candidate < ipotential_[to]) {
          ipotential_[to] = candidate;
          enqueue(to);
        }
      }
    }
    return;
  }

  CCDN_REQUIRE(potential_.size() == net.num_nodes(),
               "potentials not sized for this network");
  const std::size_t n = net.num_nodes();
  state_.in_queue.assign(n, 0);
  const std::size_t cap = n + 1;
  state_.queue.resize(cap);
  std::size_t head = 0;
  std::size_t tail = 0;
  const auto enqueue = [&](NodeId v) {
    if (state_.in_queue[v]) return;
    state_.queue[tail] = v;
    tail = (tail + 1) % cap;
    state_.in_queue[v] = 1;
  };

  // Expected maintenance first: clamp the heads of the named old arcs down
  // to tail potential + cost, so the suffix scan below already sees the
  // corrected values. Not counted as a reprice — drift on arcs into
  // dormant nodes is the normal price of the O(|seen|) potential update.
  for (const EdgeId e : clamp_arcs) {
    if (net.residual(e) <= 0) continue;
    const double candidate = potential_[net.arc_from(e)] + net.cost(e);
    if (candidate + kEps < potential_[net.arc_to(e)]) {
      potential_[net.arc_to(e)] = candidate;
      enqueue(net.arc_to(e));
    }
  }

  bool violated = false;
  for (EdgeId e = first_edge; e < 2 * net.num_edges(); ++e) {
    if (net.residual(e) <= 0) continue;
    const double candidate = potential_[net.arc_from(e)] + net.cost(e);
    if (candidate + kEps < potential_[net.arc_to(e)]) {
      potential_[net.arc_to(e)] = candidate;
      enqueue(net.arc_to(e));
      violated = true;
    }
  }
  if (head == tail) return;  // everything already prices non-negatively
  if (violated) ++reprices_;
  while (head != tail) {
    const NodeId node = state_.queue[head];
    head = (head + 1) % cap;
    state_.in_queue[node] = 0;
    for (const EdgeId e : net.out_edges(node)) {
      if (net.residual(e) <= 0) continue;
      const NodeId to = net.arc_to(e);
      const double candidate = potential_[node] + net.cost(e);
      if (candidate + kEps < potential_[to]) {
        potential_[to] = candidate;
        enqueue(to);
      }
    }
  }
}

McmfResult McmfSolver::augment(FlowNetwork& net, NodeId source, NodeId sink,
                               std::int64_t flow_limit) {
  CCDN_REQUIRE(source < net.num_nodes() && sink < net.num_nodes(),
               "source/sink out of range");
  CCDN_REQUIRE(source != sink, "source equals sink");
  CCDN_REQUIRE(flow_limit >= 0, "negative flow limit");
  if (integer_) {
    CCDN_REQUIRE(net.integer_costs(),
                 "integer-cost solver needs a quantized network; call "
                 "FlowNetwork::set_cost_quantization() before building");
  }
  if (strategy_ == McmfStrategy::kDijkstraPotentials) {
    const std::size_t priced =
        integer_ ? ipotential_.size() : potential_.size();
    CCDN_REQUIRE(priced == net.num_nodes(),
                 "potentials not sized for this network; call "
                 "reset_potentials() or reprice() first");
  }

  McmfResult result;
  while (result.flow < flow_limit) {
    bool found = false;
    if (strategy_ == McmfStrategy::kSpfa) {
      found = integer_ ? spfa_int(net, source, sink) : spfa(net, source, sink);
    } else {
      found = integer_ ? dijkstra_int(net, source, sink)
                       : dijkstra(net, source, sink);
    }
    if (!found) break;
    if (strategy_ == McmfStrategy::kDijkstraPotentials) {
      if (integer_) {
        update_potentials_int(sink);
      } else {
        update_potentials(sink);
      }
    }
    const std::int64_t room = flow_limit - result.flow;
    const std::int64_t amount = std::min(
        room, bottleneck_along_path(net, source, sink, state_.parent_edge));
    CCDN_ENSURE(amount > 0, "augmenting path with zero bottleneck");
    // Path cost is reported in km in both domains (the double mirror is
    // exact storage either way); the integer engine only *searches* in the
    // quantized domain.
    const double path_cost =
        apply_path(net, source, sink, state_.parent_edge, amount);
    result.flow += amount;
    result.cost += path_cost * static_cast<double>(amount);
  }
  return result;
}

McmfResult MinCostMaxFlow::solve(FlowNetwork& net, NodeId source, NodeId sink,
                                 McmfStrategy strategy) {
  return solve_up_to(net, source, sink,
                     std::numeric_limits<std::int64_t>::max(), strategy);
}

McmfResult MinCostMaxFlow::solve_up_to(FlowNetwork& net, NodeId source,
                                       NodeId sink, std::int64_t flow_limit,
                                       McmfStrategy strategy) {
  McmfSolver solver(strategy);
  // Forward costs are non-negative, so zero potentials are valid initially
  // for the Dijkstra strategy.
  solver.reset_potentials(net.num_nodes());
  return solver.augment(net, source, sink, flow_limit);
}

}  // namespace ccdn
