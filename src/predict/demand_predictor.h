// Per-hotspot per-video demand prediction.
//
// Maintains a bounded history of observed λ_hv per (hotspot, video) and
// produces the forecast demand matrix for the next slot, which the
// scheduler plans against (the paper's assumption 4: placement decisions
// use predicted, not observed, popularity). Videos never seen at a hotspot
// predict 0 and are skipped, keeping the state sparse.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "model/demand.h"
#include "predict/forecaster.h"

namespace ccdn {

class DemandPredictor {
 public:
  /// `history_window`: slots of history retained per (hotspot, video).
  DemandPredictor(std::size_t num_hotspots, const Forecaster& forecaster,
                  std::size_t history_window = 24);

  /// Record one slot's observed demand (hotspot count must match).
  void observe(const SlotDemand& demand);

  /// Number of slots observed so far.
  [[nodiscard]] std::size_t slots_observed() const noexcept {
    return slots_observed_;
  }

  /// Forecast the next slot's per-hotspot demand (rounded to integers,
  /// zero-demand entries dropped).
  [[nodiscard]] std::vector<std::vector<VideoDemand>> predict() const;

  /// Convenience: predicted demand combined with the *actual* request homes
  /// of the slot being planned, ready for RedirectionScheme::plan_slot.
  [[nodiscard]] SlotDemand predict_for(const SlotDemand& actual) const;

 private:
  struct Series {
    // Ring of the last `history_window` observations; absent slots are 0.
    std::deque<double> values;
  };

  const Forecaster& forecaster_;
  std::size_t history_window_;
  std::size_t num_hotspots_;
  std::size_t slots_observed_ = 0;
  std::vector<std::unordered_map<VideoId, Series>> state_;
};

}  // namespace ccdn
