#include "predict/demand_predictor.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace ccdn {

DemandPredictor::DemandPredictor(std::size_t num_hotspots,
                                 const Forecaster& forecaster,
                                 std::size_t history_window)
    : forecaster_(forecaster),
      history_window_(history_window),
      num_hotspots_(num_hotspots),
      state_(num_hotspots) {
  CCDN_REQUIRE(history_window >= 1, "history window must be positive");
}

void DemandPredictor::observe(const SlotDemand& demand) {
  CCDN_REQUIRE(demand.num_hotspots() == num_hotspots_,
               "hotspot count mismatch");
  for (std::size_t h = 0; h < num_hotspots_; ++h) {
    auto& per_video = state_[h];
    // Append this slot's counts; series for videos absent this slot get an
    // explicit 0 so forecasters see fading demand fade.
    for (auto& [video, series] : per_video) {
      series.values.push_back(0.0);
      if (series.values.size() > history_window_) series.values.pop_front();
    }
    for (const auto& d : demand.video_demand(static_cast<HotspotIndex>(h))) {
      auto [it, inserted] = per_video.try_emplace(d.video);
      if (inserted) {
        // Align the new series in time: it was 0 in the slots we already
        // observed (up to the window).
        it->second.values.assign(std::min(slots_observed_,
                                          history_window_ - 1),
                                 0.0);
        it->second.values.push_back(static_cast<double>(d.count));
      } else {
        it->second.values.back() = static_cast<double>(d.count);
      }
    }
    // Drop all-zero series to keep the state sparse.
    for (auto it = per_video.begin(); it != per_video.end();) {
      const auto& values = it->second.values;
      const bool all_zero =
          std::all_of(values.begin(), values.end(),
                      [](double v) { return v == 0.0; });
      it = all_zero ? per_video.erase(it) : std::next(it);
    }
  }
  ++slots_observed_;
}

std::vector<std::vector<VideoDemand>> DemandPredictor::predict() const {
  std::vector<std::vector<VideoDemand>> predicted(num_hotspots_);
  std::vector<double> history;
  for (std::size_t h = 0; h < num_hotspots_; ++h) {
    predicted[h].reserve(state_[h].size());
    for (const auto& [video, series] : state_[h]) {
      history.assign(series.values.begin(), series.values.end());
      const double value = forecaster_.forecast(history);
      const auto count =
          static_cast<std::uint32_t>(std::llround(std::max(0.0, value)));
      if (count > 0) predicted[h].push_back({video, count});
    }
    std::sort(predicted[h].begin(), predicted[h].end(),
              [](const VideoDemand& a, const VideoDemand& b) {
                return a.video < b.video;
              });
  }
  return predicted;
}

SlotDemand DemandPredictor::predict_for(const SlotDemand& actual) const {
  CCDN_REQUIRE(actual.num_hotspots() == num_hotspots_,
               "hotspot count mismatch");
  const auto homes = actual.request_home();
  return SlotDemand(predict(),
                    std::vector<HotspotIndex>(homes.begin(), homes.end()));
}

}  // namespace ccdn
