// Time-series forecasters for per-video demand.
//
// Paper §III assumption 4: "the popularity distribution of the files
// changes slowly, and it can be learned through some popularity prediction
// algorithm (like the regression model ARIMA)". The scheduler plans slot
// t+1 from a forecast of λ_hv; these are the standard light-weight models
// used for that purpose. All forecasters consume a history vector ordered
// oldest -> newest and return the next-step prediction (clamped to >= 0).
#pragma once

#include <memory>
#include <span>
#include <string>

namespace ccdn {

class Forecaster {
 public:
  virtual ~Forecaster() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Predict the value following `history` (oldest first). An empty history
  /// predicts 0.
  [[nodiscard]] virtual double forecast(
      std::span<const double> history) const = 0;
};

using ForecasterPtr = std::unique_ptr<Forecaster>;

/// Predicts the most recent observation (the "naive" baseline).
class LastValueForecaster final : public Forecaster {
 public:
  [[nodiscard]] std::string name() const override { return "last-value"; }
  [[nodiscard]] double forecast(std::span<const double> history) const override;
};

/// Mean of the last `window` observations.
class MovingAverageForecaster final : public Forecaster {
 public:
  explicit MovingAverageForecaster(std::size_t window);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double forecast(std::span<const double> history) const override;

 private:
  std::size_t window_;
};

/// Simple exponential smoothing with factor alpha in (0, 1].
class ExponentialSmoothingForecaster final : public Forecaster {
 public:
  explicit ExponentialSmoothingForecaster(double alpha);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double forecast(std::span<const double> history) const override;

 private:
  double alpha_;
};

/// Holt's linear (double exponential) smoothing: level + trend.
class HoltForecaster final : public Forecaster {
 public:
  HoltForecaster(double alpha, double beta);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double forecast(std::span<const double> history) const override;

 private:
  double alpha_;
  double beta_;
};

/// AR(1) with intercept, fitted by ordinary least squares over the history
/// (an ARIMA(1,0,0) model — the regression family the paper cites). Falls
/// back to the mean when the history is too short or degenerate.
class Ar1Forecaster final : public Forecaster {
 public:
  [[nodiscard]] std::string name() const override { return "ar1"; }
  [[nodiscard]] double forecast(std::span<const double> history) const override;
};

/// Seasonal naive: predicts the value one period (e.g. 24 hourly slots)
/// ago — the canonical model for strongly diurnal demand. Falls back to
/// the last value while the history is shorter than one period.
class SeasonalNaiveForecaster final : public Forecaster {
 public:
  explicit SeasonalNaiveForecaster(std::size_t period);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double forecast(std::span<const double> history) const override;

 private:
  std::size_t period_;
};

}  // namespace ccdn
