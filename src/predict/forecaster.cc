#include "predict/forecaster.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"
#include "util/strings.h"

namespace ccdn {

namespace {
double clamp_non_negative(double value) { return std::max(0.0, value); }
}  // namespace

double LastValueForecaster::forecast(std::span<const double> history) const {
  return history.empty() ? 0.0 : clamp_non_negative(history.back());
}

MovingAverageForecaster::MovingAverageForecaster(std::size_t window)
    : window_(window) {
  CCDN_REQUIRE(window >= 1, "window must be positive");
}

std::string MovingAverageForecaster::name() const {
  return "moving-average(" + std::to_string(window_) + ")";
}

double MovingAverageForecaster::forecast(
    std::span<const double> history) const {
  if (history.empty()) return 0.0;
  const std::size_t n = std::min(window_, history.size());
  const auto tail = history.subspan(history.size() - n, n);
  const double sum = std::accumulate(tail.begin(), tail.end(), 0.0);
  return clamp_non_negative(sum / static_cast<double>(n));
}

ExponentialSmoothingForecaster::ExponentialSmoothingForecaster(double alpha)
    : alpha_(alpha) {
  CCDN_REQUIRE(alpha > 0.0 && alpha <= 1.0, "alpha outside (0,1]");
}

std::string ExponentialSmoothingForecaster::name() const {
  return "exp-smoothing(" + format_fixed(alpha_, 2) + ")";
}

double ExponentialSmoothingForecaster::forecast(
    std::span<const double> history) const {
  if (history.empty()) return 0.0;
  double level = history.front();
  for (std::size_t i = 1; i < history.size(); ++i) {
    level = alpha_ * history[i] + (1.0 - alpha_) * level;
  }
  return clamp_non_negative(level);
}

HoltForecaster::HoltForecaster(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
  CCDN_REQUIRE(alpha > 0.0 && alpha <= 1.0, "alpha outside (0,1]");
  CCDN_REQUIRE(beta > 0.0 && beta <= 1.0, "beta outside (0,1]");
}

std::string HoltForecaster::name() const {
  return "holt(" + format_fixed(alpha_, 2) + "," + format_fixed(beta_, 2) +
         ")";
}

double HoltForecaster::forecast(std::span<const double> history) const {
  if (history.empty()) return 0.0;
  if (history.size() == 1) return clamp_non_negative(history.front());
  double level = history[0];
  double trend = history[1] - history[0];
  for (std::size_t i = 1; i < history.size(); ++i) {
    const double previous_level = level;
    level = alpha_ * history[i] + (1.0 - alpha_) * (level + trend);
    trend = beta_ * (level - previous_level) + (1.0 - beta_) * trend;
  }
  return clamp_non_negative(level + trend);
}

double Ar1Forecaster::forecast(std::span<const double> history) const {
  if (history.empty()) return 0.0;
  const double mean =
      std::accumulate(history.begin(), history.end(), 0.0) /
      static_cast<double>(history.size());
  if (history.size() < 3) return clamp_non_negative(history.back());
  // OLS fit of x[t] = c + phi * x[t-1].
  double sxx = 0.0;
  double sxy = 0.0;
  double sx = 0.0;
  double sy = 0.0;
  const auto n = static_cast<double>(history.size() - 1);
  for (std::size_t t = 1; t < history.size(); ++t) {
    sx += history[t - 1];
    sy += history[t];
    sxx += history[t - 1] * history[t - 1];
    sxy += history[t - 1] * history[t];
  }
  const double denominator = n * sxx - sx * sx;
  if (std::abs(denominator) < 1e-12) return clamp_non_negative(mean);
  double phi = (n * sxy - sx * sy) / denominator;
  // Guard against explosive fits on short noisy histories.
  phi = std::clamp(phi, -1.0, 1.0);
  const double intercept = (sy - phi * sx) / n;
  return clamp_non_negative(intercept + phi * history.back());
}

SeasonalNaiveForecaster::SeasonalNaiveForecaster(std::size_t period)
    : period_(period) {
  CCDN_REQUIRE(period >= 1, "period must be positive");
}

std::string SeasonalNaiveForecaster::name() const {
  return "seasonal-naive(" + std::to_string(period_) + ")";
}

double SeasonalNaiveForecaster::forecast(
    std::span<const double> history) const {
  if (history.empty()) return 0.0;
  if (history.size() < period_) {
    return clamp_non_negative(history.back());
  }
  return clamp_non_negative(history[history.size() - period_]);
}

}  // namespace ccdn
