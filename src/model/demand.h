// Per-hotspot demand aggregation for one timeslot.
//
// Paper §III assumption 2: individual requests are aggregated at their
// nearest hotspot; the scheduler then redirects *aggregated* load between
// hotspots. SlotDemand is the λ_h / λ_hv view the RBCAer algorithm consumes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geo/grid_index.h"
#include "model/types.h"

namespace ccdn {

/// Demand for one video at one hotspot.
struct VideoDemand {
  VideoId video = 0;
  std::uint32_t count = 0;
};

class SlotDemand {
 public:
  /// Aggregate `requests` at their nearest hotspot. `hotspot_index` must be
  /// built over the hotspot locations (one point per hotspot).
  SlotDemand(std::span<const Request> requests,
             const GridIndex& hotspot_index);

  /// Construct directly from per-hotspot demand vectors (tests, synthetic
  /// workloads). Each inner vector may be unsorted; duplicates are merged.
  explicit SlotDemand(std::vector<std::vector<VideoDemand>> per_hotspot);

  /// Hybrid view for *predictive* scheduling: per-hotspot demand comes from
  /// a forecast while request homes come from the actual slot (so plans can
  /// still be materialized per request). `request_home` values must be
  /// valid hotspot indices.
  SlotDemand(std::vector<std::vector<VideoDemand>> predicted_per_hotspot,
             std::vector<HotspotIndex> request_home);

  [[nodiscard]] std::size_t num_hotspots() const noexcept {
    return per_hotspot_.size();
  }
  [[nodiscard]] std::size_t num_requests() const noexcept {
    return total_requests_;
  }

  /// λ_h: total requests aggregated at hotspot h.
  [[nodiscard]] std::uint32_t load(HotspotIndex h) const;

  /// λ_hv, sorted ascending by video id.
  [[nodiscard]] std::span<const VideoDemand> video_demand(
      HotspotIndex h) const;

  /// λ_hv for a single video (0 when absent).
  [[nodiscard]] std::uint32_t demand_for(HotspotIndex h, VideoId video) const;

  /// Home hotspot of each request (same order as the input span); empty when
  /// constructed from per-hotspot vectors.
  [[nodiscard]] std::span<const HotspotIndex> request_home() const noexcept {
    return request_home_;
  }

  /// All distinct videos requested anywhere this slot, ascending.
  [[nodiscard]] std::span<const VideoId> requested_videos() const noexcept {
    return requested_videos_;
  }

 private:
  void finalize();

  std::vector<std::vector<VideoDemand>> per_hotspot_;
  std::vector<std::uint32_t> loads_;
  std::vector<HotspotIndex> request_home_;
  std::vector<VideoId> requested_videos_;
  std::size_t total_requests_ = 0;
};

}  // namespace ccdn
