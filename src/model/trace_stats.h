// Descriptive statistics of a session trace.
//
// Summarizes the fields the paper reports for its datasets (users, videos,
// sessions, time span) plus the request-per-hour profile; used by the
// ccdn-trace CLI and the measurement example.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "model/types.h"

namespace ccdn {

struct TraceStats {
  std::size_t num_requests = 0;
  std::size_t distinct_users = 0;
  std::size_t distinct_videos = 0;
  std::int64_t first_timestamp = 0;
  std::int64_t last_timestamp = 0;
  /// Requests per hour-of-day (timestamp / 3600 mod 24).
  std::array<std::size_t, 24> per_hour{};
  /// Share of requests carried by the most popular 20% of videos
  /// (the paper's Pareto check); 0 when the trace is empty.
  double top20_share = 0.0;

  [[nodiscard]] std::int64_t span_seconds() const noexcept {
    return num_requests == 0 ? 0 : last_timestamp - first_timestamp;
  }
};

/// Single pass over the trace (plus a sort over the distinct-video counts
/// for the Pareto share).
[[nodiscard]] TraceStats compute_trace_stats(std::span<const Request> requests);

}  // namespace ccdn
