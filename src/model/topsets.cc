#include "model/topsets.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace ccdn {

std::vector<VideoId> top_k_videos(std::span<const VideoDemand> demands,
                                  std::size_t k) {
  k = std::min(k, demands.size());
  if (k == 0) return {};
  std::vector<VideoId> ids;
  ids.reserve(k);
  if (k == demands.size()) {
    // Everything qualifies: skip the demand copy and the selection.
    for (const auto& d : demands) ids.push_back(d.video);
  } else {
    std::vector<VideoDemand> sorted(demands.begin(), demands.end());
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     sorted.end(),
                     [](const VideoDemand& a, const VideoDemand& b) {
                       if (a.count != b.count) return a.count > b.count;
                       return a.video < b.video;
                     });
    for (std::size_t i = 0; i < k; ++i) ids.push_back(sorted[i].video);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<VideoId> top_fraction_videos(std::span<const VideoDemand> demands,
                                         double fraction) {
  CCDN_REQUIRE(fraction > 0.0 && fraction <= 1.0, "fraction outside (0,1]");
  if (demands.empty()) return {};
  const auto k = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(demands.size())));
  return top_k_videos(demands, std::max<std::size_t>(1, k));
}

std::vector<std::vector<VideoId>> top_sets_per_hotspot(
    const SlotDemand& demand, double fraction) {
  std::vector<std::vector<VideoId>> sets(demand.num_hotspots());
  for (std::size_t h = 0; h < demand.num_hotspots(); ++h) {
    sets[h] = top_fraction_videos(
        demand.video_demand(static_cast<HotspotIndex>(h)), fraction);
  }
  return sets;
}

}  // namespace ccdn
