// Partition a session trace into fixed-length timeslots.
//
// The scheduler makes one joint redirection + replication decision per slot
// (1 h in the paper).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/types.h"

namespace ccdn {

/// Half-open index range [begin, end) into a request vector.
struct SlotRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
};

/// Split requests (which must be sorted by timestamp ascending) into
/// consecutive slots of `slot_seconds`. Slots are anchored at the first
/// request's timestamp; empty interior slots are preserved (zero-length
/// ranges) so slot indexes align with wall-clock hours.
/// Requires slot_seconds > 0.
[[nodiscard]] std::vector<SlotRange> partition_into_slots(
    std::span<const Request> requests, std::int64_t slot_seconds);

}  // namespace ccdn
