#include "model/timeslots.h"

#include <algorithm>

#include "util/error.h"

namespace ccdn {

std::vector<SlotRange> partition_into_slots(std::span<const Request> requests,
                                            std::int64_t slot_seconds) {
  CCDN_REQUIRE(slot_seconds > 0, "slot length must be positive");
  CCDN_REQUIRE(std::is_sorted(requests.begin(), requests.end(),
                              [](const Request& a, const Request& b) {
                                return a.timestamp < b.timestamp;
                              }),
               "requests must be sorted by timestamp");
  std::vector<SlotRange> slots;
  if (requests.empty()) return slots;

  const std::int64_t origin = requests.front().timestamp;
  std::size_t cursor = 0;
  while (cursor < requests.size()) {
    const auto slot_index = static_cast<std::size_t>(
        (requests[cursor].timestamp - origin) / slot_seconds);
    while (slots.size() < slot_index) {
      slots.push_back({cursor, cursor});  // empty interior slot
    }
    const std::int64_t slot_end_ts =
        origin + static_cast<std::int64_t>(slot_index + 1) * slot_seconds;
    std::size_t end = cursor;
    while (end < requests.size() && requests[end].timestamp < slot_end_ts) {
      ++end;
    }
    slots.push_back({cursor, end});
    cursor = end;
  }
  return slots;
}

}  // namespace ccdn
