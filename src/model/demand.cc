#include "model/demand.h"

#include <algorithm>

#include "util/error.h"

namespace ccdn {

SlotDemand::SlotDemand(std::span<const Request> requests,
                       const GridIndex& hotspot_index)
    : per_hotspot_(hotspot_index.size()) {
  request_home_.reserve(requests.size());
  // First pass: raw (video) appends per hotspot; merged in finalize().
  for (const Request& request : requests) {
    const auto home =
        static_cast<HotspotIndex>(hotspot_index.nearest(request.location));
    request_home_.push_back(home);
    per_hotspot_[home].push_back({request.video, 1});
  }
  finalize();
}

SlotDemand::SlotDemand(std::vector<std::vector<VideoDemand>> per_hotspot)
    : per_hotspot_(std::move(per_hotspot)) {
  finalize();
}

SlotDemand::SlotDemand(
    std::vector<std::vector<VideoDemand>> predicted_per_hotspot,
    std::vector<HotspotIndex> request_home)
    : per_hotspot_(std::move(predicted_per_hotspot)),
      request_home_(std::move(request_home)) {
  for (const HotspotIndex home : request_home_) {
    CCDN_REQUIRE(home < per_hotspot_.size(), "request home out of range");
  }
  finalize();
}

void SlotDemand::finalize() {
  loads_.assign(per_hotspot_.size(), 0);
  for (std::size_t h = 0; h < per_hotspot_.size(); ++h) {
    auto& demands = per_hotspot_[h];
    std::sort(demands.begin(), demands.end(),
              [](const VideoDemand& a, const VideoDemand& b) {
                return a.video < b.video;
              });
    // Merge duplicate video entries.
    std::size_t write = 0;
    for (std::size_t read = 0; read < demands.size(); ++read) {
      if (write > 0 && demands[write - 1].video == demands[read].video) {
        demands[write - 1].count += demands[read].count;
      } else {
        demands[write++] = demands[read];
      }
    }
    demands.resize(write);
    for (const auto& d : demands) {
      loads_[h] += d.count;
      requested_videos_.push_back(d.video);
    }
    total_requests_ += loads_[h];
  }
  std::sort(requested_videos_.begin(), requested_videos_.end());
  requested_videos_.erase(
      std::unique(requested_videos_.begin(), requested_videos_.end()),
      requested_videos_.end());
}

std::uint32_t SlotDemand::load(HotspotIndex h) const {
  CCDN_REQUIRE(h < loads_.size(), "hotspot index out of range");
  return loads_[h];
}

std::span<const VideoDemand> SlotDemand::video_demand(HotspotIndex h) const {
  CCDN_REQUIRE(h < per_hotspot_.size(), "hotspot index out of range");
  return per_hotspot_[h];
}

std::uint32_t SlotDemand::demand_for(HotspotIndex h, VideoId video) const {
  const auto demands = video_demand(h);
  const auto it = std::lower_bound(
      demands.begin(), demands.end(), video,
      [](const VideoDemand& d, VideoId v) { return d.video < v; });
  if (it == demands.end() || it->video != video) return 0;
  return it->count;
}

}  // namespace ccdn
