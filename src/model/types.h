// Core domain vocabulary of the crowdsourced CDN.
//
// Terminology follows the paper (§III): a *hotspot* is an edge device
// (e.g. smart Wi-Fi AP) with service capacity s_h (requests per timeslot)
// and cache capacity c_h (unit-size videos); the *origin CDN server* holds
// every video and absorbs whatever the hotspots cannot serve.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "geo/geo_point.h"

namespace ccdn {

using VideoId = std::uint32_t;
using UserId = std::uint32_t;
using HotspotIndex = std::uint32_t;  // position in the hotspot vector

/// Sentinel "hotspot" index meaning the origin CDN server.
inline constexpr HotspotIndex kCdnServer =
    std::numeric_limits<HotspotIndex>::max();

/// One video-session request (one row of the session trace).
struct Request {
  UserId user = 0;
  VideoId video = 0;
  std::int64_t timestamp = 0;  // seconds since trace start
  GeoPoint location;
};

/// An edge content hotspot.
struct Hotspot {
  GeoPoint location;
  /// Requests it can serve in one timeslot (s_h).
  std::uint32_t service_capacity = 0;
  /// Unit-size videos it can cache (c_h).
  std::uint32_t cache_capacity = 0;
};

/// Video catalog. Videos are unit-size (paper §III assumption 3), so the
/// catalog is fully described by its cardinality.
struct VideoCatalog {
  std::uint32_t num_videos = 0;
};

/// Distance charged when the origin CDN server serves a request
/// (paper §V-A: the 17x11 km region diagonal, ~20 km).
inline constexpr double kCdnDistanceKm = 20.0;

}  // namespace ccdn
