#include "model/trace_stats.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ccdn {

TraceStats compute_trace_stats(std::span<const Request> requests) {
  TraceStats stats;
  stats.num_requests = requests.size();
  if (requests.empty()) return stats;

  std::unordered_set<UserId> users;
  std::unordered_map<VideoId, std::size_t> video_counts;
  stats.first_timestamp = requests.front().timestamp;
  stats.last_timestamp = requests.front().timestamp;
  for (const Request& request : requests) {
    users.insert(request.user);
    ++video_counts[request.video];
    stats.first_timestamp = std::min(stats.first_timestamp, request.timestamp);
    stats.last_timestamp = std::max(stats.last_timestamp, request.timestamp);
    const auto hour =
        static_cast<std::size_t>((request.timestamp / 3600) % 24);
    ++stats.per_hour[hour];
  }
  stats.distinct_users = users.size();
  stats.distinct_videos = video_counts.size();

  std::vector<std::size_t> counts;
  counts.reserve(video_counts.size());
  // ccdn-lint: allow(unordered-iteration) -- extract-then-sort: counts is
  // fully sorted descending before the head-mass share is computed
  for (const auto& [_, count] : video_counts) counts.push_back(count);
  std::sort(counts.rbegin(), counts.rend());
  const std::size_t head = std::max<std::size_t>(1, counts.size() / 5);
  std::size_t head_mass = 0;
  for (std::size_t i = 0; i < head; ++i) head_mass += counts[i];
  stats.top20_share = static_cast<double>(head_mass) /
                      static_cast<double>(requests.size());
  return stats;
}

}  // namespace ccdn
