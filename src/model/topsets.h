// Top-k / top-fraction popular content sets.
//
// The paper characterizes a hotspot by its Top-20% requested videos
// (80/20 Pareto footnote) and compares hotspots by the Jaccard similarity
// of those sets (Eq. 1); the same sets feed the content-distance clustering
// in RBCAer (§IV-B).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/demand.h"

namespace ccdn {

/// The `k` most-requested videos among `demands`, returned sorted ascending
/// by video id (ready for jaccard_similarity). Ties broken by lower video id.
/// k is clamped to the number of distinct videos.
[[nodiscard]] std::vector<VideoId> top_k_videos(
    std::span<const VideoDemand> demands, std::size_t k);

/// Top `fraction` (0 < fraction <= 1) of the distinct videos by request
/// count; at least one video when demands is non-empty.
[[nodiscard]] std::vector<VideoId> top_fraction_videos(
    std::span<const VideoDemand> demands, double fraction);

/// Top-20% sets for every hotspot of a slot (paper's similarity unit).
[[nodiscard]] std::vector<std::vector<VideoId>> top_sets_per_hotspot(
    const SlotDemand& demand, double fraction = 0.2);

}  // namespace ccdn
