#include "cluster/content_distance.h"

#include <future>
#include <optional>
#include <utility>

#include "cluster/topset_bitmap.h"
#include "stats/correlation.h"
#include "util/thread_pool.h"

namespace ccdn {

namespace {

/// Fill condensed rows [row_begin, row_end): row i is the contiguous slice
/// of out starting at i*n - i*(i+1)/2 + ... — disjoint per stripe.
template <typename Kernel>
void fill_rows(std::span<double> out, std::size_t n, std::size_t row_begin,
               std::size_t row_end, const Kernel& jaccard) {
  std::size_t cursor = row_begin * n - row_begin * (row_begin + 1) / 2;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      out[cursor++] = 1.0 - jaccard(i, j);
    }
  }
}

template <typename Kernel>
void fill_matrix(std::span<double> out, std::size_t n, ThreadPool* pool,
                 const Kernel& jaccard) {
  if (pool == nullptr || pool->size() < 2 || n < 2) {
    fill_rows(out, n, 0, n, jaccard);
    return;
  }
  // Row i holds n-1-i pairs, so equal row counts would skew the stripes;
  // cut contiguous row ranges at roughly equal pair counts instead.
  const std::size_t total_pairs = n * (n - 1) / 2;
  const std::size_t target = (total_pairs + pool->size() - 1) / pool->size();
  std::vector<std::future<void>> stripes;
  std::size_t row_begin = 0;
  while (row_begin < n) {
    std::size_t row_end = row_begin;
    std::size_t pairs = 0;
    while (row_end < n && pairs < target) pairs += n - 1 - row_end++;
    stripes.push_back(pool->submit([out, n, row_begin, row_end, &jaccard] {
      fill_rows(out, n, row_begin, row_end, jaccard);
    }));
    row_begin = row_end;
  }
  for (auto& stripe : stripes) stripe.get();
}

}  // namespace

DistanceMatrix content_distance_matrix(
    std::span<const std::vector<VideoId>> top_sets,
    const ContentDistanceOptions& options) {
  const std::size_t n = top_sets.size();
  DistanceMatrix matrix(n);
  if (options.use_bitmap) {
    const TopsetBitmap bitmap(top_sets);
    fill_matrix(matrix.condensed(), n, options.pool,
                [&bitmap](std::size_t i, std::size_t j) {
                  return bitmap.jaccard(i, j);
                });
  } else {
    fill_matrix(matrix.condensed(), n, options.pool,
                [top_sets](std::size_t i, std::size_t j) {
                  return jaccard_similarity(top_sets[i], top_sets[j]);
                });
  }
  return matrix;
}

}  // namespace ccdn
