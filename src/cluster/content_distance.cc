#include "cluster/content_distance.h"

#include "stats/correlation.h"

namespace ccdn {

DistanceMatrix content_distance_matrix(
    std::span<const std::vector<VideoId>> top_sets) {
  DistanceMatrix matrix(top_sets.size());
  for (std::size_t i = 0; i < top_sets.size(); ++i) {
    for (std::size_t j = i + 1; j < top_sets.size(); ++j) {
      const double similarity = jaccard_similarity(top_sets[i], top_sets[j]);
      matrix.set(i, j, 1.0 - similarity);
    }
  }
  return matrix;
}

}  // namespace ccdn
