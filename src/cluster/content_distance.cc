#include "cluster/content_distance.h"

#include <algorithm>
#include <future>
#include <utility>

#include "cluster/simd_kernels.h"
#include "cluster/topset_bitmap.h"
#include "stats/correlation.h"
#include "util/thread_pool.h"

namespace ccdn {

namespace {

/// Default jaccard_row tile: 384 rows x ~128 words x 8 B ≈ 384 KB at
/// city-scale universes — small enough to stay L2-resident across the
/// whole anchor loop of the tile-major sweep below, wide enough that the
/// 16-lane transposed kernel rarely runs its scalar tail.
constexpr std::size_t kDefaultTileRows = 384;

/// Fill condensed rows [row_begin, row_end) pair by pair: row i is the
/// contiguous slice of out starting at i*n - i*(i+1)/2 — disjoint per
/// stripe. Kept for the sorted-merge oracle path.
template <typename Kernel>
void fill_rows(std::span<double> out, std::size_t n, std::size_t row_begin,
               std::size_t row_end, const Kernel& jaccard) {
  std::size_t cursor = row_begin * n - row_begin * (row_begin + 1) / 2;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      out[cursor++] = 1.0 - jaccard(i, j);
    }
  }
}

/// Batch fill for the bitmap kernel, tile-major: the outer loop walks
/// tiles of consecutive j rows and the inner loop runs every stripe
/// anchor against the same tile, so the tile's packed rows stay
/// L2-resident across ~stripe_rows jaccard_row calls instead of being
/// re-streamed from L3 once per anchor (each pair (i, j) is still
/// evaluated exactly once — the tiles partition every anchor's column
/// range). Identical doubles to the pair-by-pair path for any tile size,
/// loop order, and SimdMode: the kernels produce exact integer counts per
/// pair, independent of when the pair's tile is visited.
void fill_rows_batch(std::span<double> out, std::size_t n,
                     std::size_t row_begin, std::size_t row_end,
                     const TopsetBitmap& bitmap, SimdMode simd,
                     std::size_t tile_rows) {
  const auto row_base = [n](std::size_t i) {
    return i * n - i * (i + 1) / 2;
  };
  const bool use_avx2 = resolve_simd(simd);
  TopsetBitmap::RowTile packed;  // buffer capacity persists across tiles
  for (std::size_t j0 = row_begin + 1; j0 < n; j0 += tile_rows) {
    const std::size_t j1 = std::min(n, j0 + tile_rows);
    // The transposed copy costs O(tile x words) once and turns every
    // anchor's gathers into contiguous loads — worth it only on AVX2.
    if (use_avx2) bitmap.pack_tile(j0, j1, packed);
    // Anchors with at least one pair inside [j0, j1) need i + 1 < j1.
    const std::size_t i_end = std::min(row_end, j1 - 1);
    for (std::size_t i = row_begin; i < i_end; ++i) {
      const std::size_t j_begin = std::max(j0, i + 1);
      const auto tile =
          out.subspan(row_base(i) + (j_begin - i - 1), j1 - j_begin);
      if (use_avx2) {
        bitmap.jaccard_row(i, packed, j_begin, tile, simd);
      } else {
        bitmap.jaccard_row(i, j_begin, j1, tile, simd);
      }
      for (double& d : tile) d = 1.0 - d;
    }
  }
}

/// Cut contiguous row stripes at roughly equal pair counts (row i holds
/// n-1-i pairs, so equal row counts would skew the stripes) and run
/// `fill_stripe(row_begin, row_end)` for each — serial without a pool.
template <typename Fill>
void striped(std::size_t n, ThreadPool* pool, const Fill& fill_stripe) {
  if (pool == nullptr || pool->size() < 2 || n < 2) {
    fill_stripe(std::size_t{0}, n);
    return;
  }
  const std::size_t total_pairs = n * (n - 1) / 2;
  const std::size_t target = (total_pairs + pool->size() - 1) / pool->size();
  std::vector<std::future<void>> stripes;
  std::size_t row_begin = 0;
  while (row_begin < n) {
    std::size_t row_end = row_begin;
    std::size_t pairs = 0;
    while (row_end < n && pairs < target) pairs += n - 1 - row_end++;
    stripes.push_back(pool->submit([row_begin, row_end, &fill_stripe] {
      fill_stripe(row_begin, row_end);
    }));
    row_begin = row_end;
  }
  for (auto& stripe : stripes) stripe.get();
}

}  // namespace

DistanceMatrix content_distance_matrix(
    std::span<const std::vector<VideoId>> top_sets,
    const ContentDistanceOptions& options) {
  const std::size_t n = top_sets.size();
  DistanceMatrix matrix(n);
  if (options.use_bitmap) {
    // Resolve the SIMD mode once, on the caller's thread, so a forced-but-
    // unavailable kAvx2 throws here rather than inside a pool task.
    const SimdMode simd =
        resolve_simd(options.simd) ? SimdMode::kAvx2 : SimdMode::kScalar;
    const std::size_t tile_rows =
        options.tile_rows == 0 ? kDefaultTileRows : options.tile_rows;
    const TopsetBitmap bitmap(top_sets);
    const auto out = matrix.condensed();
    striped(n, options.pool,
            [out, n, &bitmap, simd, tile_rows](std::size_t row_begin,
                                               std::size_t row_end) {
              fill_rows_batch(out, n, row_begin, row_end, bitmap, simd,
                              tile_rows);
            });
  } else {
    const auto out = matrix.condensed();
    striped(n, options.pool,
            [out, n, top_sets](std::size_t row_begin, std::size_t row_end) {
              fill_rows(out, n, row_begin, row_end,
                        [top_sets](std::size_t i, std::size_t j) {
                          return jaccard_similarity(top_sets[i],
                                                    top_sets[j]);
                        });
            });
  }
  return matrix;
}

}  // namespace ccdn
