#include "cluster/hierarchical.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "cluster/simd_kernels.h"
#include "util/error.h"

namespace ccdn {

DistanceMatrix::DistanceMatrix(std::size_t n)
    : n_(n), data_(n < 2 ? 0 : n * (n - 1) / 2, 0.0) {}

std::size_t DistanceMatrix::slot(std::size_t i, std::size_t j) const {
  // Debug-only: at() sits inside the clustering inner loops, so a thrown
  // check per read would dominate release-mode profiles.
  CCDN_ASSERT(i < n_ && j < n_ && i != j, "bad index pair");
  if (i > j) std::swap(i, j);
  // Condensed index of (i, j), i < j.
  return i * n_ - i * (i + 1) / 2 + (j - i - 1);
}

double DistanceMatrix::at(std::size_t i, std::size_t j) const {
  if (i == j) return 0.0;
  return data_[slot(i, j)];
}

void DistanceMatrix::set(std::size_t i, std::size_t j, double distance) {
  CCDN_REQUIRE(distance >= 0.0, "negative distance");
  data_[slot(i, j)] = distance;
}

namespace {

/// Lance-Williams update for the distance between a freshly merged cluster
/// (a ∪ b) and another cluster k.
double merged_distance(Linkage linkage, double d_ak, double d_bk,
                       std::size_t size_a, std::size_t size_b) {
  switch (linkage) {
    case Linkage::kSingle:
      return std::min(d_ak, d_bk);
    case Linkage::kComplete:
      return std::max(d_ak, d_bk);
    case Linkage::kAverage: {
      const double wa = static_cast<double>(size_a);
      const double wb = static_cast<double>(size_b);
      return (wa * d_ak + wb * d_bk) / (wa + wb);
    }
  }
  return std::max(d_ak, d_bk);
}

}  // namespace

ClusteringResult hierarchical_cluster(const DistanceMatrix& distances,
                                      Linkage linkage, double threshold,
                                      SimdMode simd) {
  const std::size_t n = distances.size();
  ClusteringResult result;
  if (n == 0) return result;

  // Both argmin scans below batch through a masked min-reduce kernel and
  // recover the scalar first-index semantics with an equality rescan: the
  // reduce is an exact IEEE min (order-free, no NaNs by the set()
  // contract), and the first index attaining that value under == is
  // exactly the index the strict-< scalar scan keeps. Resolved once so a
  // forced-unavailable kAvx2 throws up front.
  const auto masked_min =
      resolve_simd(simd) ? simd::masked_min_avx2 : simd::masked_min_scalar;

  // Working distances over active clusters: one contiguous condensed
  // buffer (seeded by copying the input triangle wholesale) addressed with
  // index arithmetic, instead of an n² vector-of-vectors — half the
  // memory, and row sweeps stay in cache at hotspot-count scale.
  const auto input = distances.condensed();
  std::vector<double> dist(input.begin(), input.end());
  const auto cond = [n](std::size_t i, std::size_t j) {
    if (i > j) std::swap(i, j);
    return i * n - i * (i + 1) / 2 + (j - i - 1);
  };

  // Byte mask (not vector<bool>) so the kernels can read it directly.
  std::vector<std::uint8_t> active(n, 1);
  std::vector<std::size_t> cluster_size(n, 1);
  // Dendrogram node id currently represented by each active slot.
  std::vector<std::uint32_t> node_id(n);
  std::iota(node_id.begin(), node_id.end(), 0u);

  // Nearest-neighbour cache per active slot; amortizes the min search.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> nn(n, 0);
  std::vector<double> nn_dist(n, kInf);
  const auto recompute_nn = [&](std::size_t i) {
    // Column part (j < i): condensed entries (j, i) sit at row-varying
    // strides, so this stays a scalar walk — ascending j, strict <, the
    // seed semantics.
    double best = kInf;
    std::size_t best_j = 0;
    for (std::size_t j = 0; j < i; ++j) {
      if (active[j] == 0) continue;
      const double d = dist[cond(j, i)];
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    // Row part (j > i): entries (i, i+1..n-1) are one contiguous condensed
    // slice — the batch kernel reduces it, the rescan finds the first
    // active index attaining the min. A row tie against the column best
    // loses, like it would under the ascending strict-< scan.
    const std::size_t row_len = n - 1 - i;
    if (row_len > 0) {
      const double* row = dist.data() + cond(i, i + 1);
      const std::uint8_t* mask = active.data() + i + 1;
      const double row_min = masked_min(row, mask, row_len);
      if (row_min < best) {
        for (std::size_t t = 0; t < row_len; ++t) {
          if (mask[t] != 0 && row[t] == row_min) {
            best = row[t];
            best_j = i + 1 + t;
            break;
          }
        }
      }
    }
    nn_dist[i] = best;
    nn[i] = best_j;
  };
  for (std::size_t i = 0; i < n; ++i) recompute_nn(i);

  std::size_t active_count = n;
  std::uint32_t next_node = static_cast<std::uint32_t>(n);
  while (active_count > 1) {
    // Global closest pair from the caches: same batch reduce + first-index
    // rescan over the contiguous nn_dist array.
    std::size_t best_i = n;
    double best = masked_min(nn_dist.data(), active.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      if (active[i] != 0 && nn_dist[i] == best) {
        best_i = i;
        best = nn_dist[i];  // the array element, for exact bit parity
        break;
      }
    }
    if (best_i == n || best == kInf || best > threshold) break;
    const std::size_t a = best_i;
    const std::size_t b = nn[a];
    CCDN_ENSURE(active[a] && active[b] && a != b, "stale nearest neighbour");

    result.merges.push_back({node_id[a], node_id[b], best});
    // Merge b into a.
    for (std::size_t k = 0; k < n; ++k) {
      if (!active[k] || k == a || k == b) continue;
      dist[cond(a, k)] =
          merged_distance(linkage, dist[cond(a, k)], dist[cond(b, k)],
                          cluster_size[a], cluster_size[b]);
    }
    active[b] = 0;
    cluster_size[a] += cluster_size[b];
    node_id[a] = next_node++;
    --active_count;

    // Refresh caches invalidated by the merge.
    recompute_nn(a);
    for (std::size_t k = 0; k < n; ++k) {
      if (!active[k] || k == a) continue;
      if (nn[k] == a || nn[k] == b) {
        recompute_nn(k);
      } else if (dist[cond(k, a)] < nn_dist[k]) {
        nn[k] = a;
        nn_dist[k] = dist[cond(k, a)];
      }
    }
  }

  // Flatten: union-find over the merge history restricted to <= threshold
  // (all recorded merges qualify by construction).
  std::vector<std::uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0u);
  const auto find = [&](std::uint32_t x) -> std::uint32_t {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  // Map dendrogram node id -> representative leaf.
  std::vector<std::uint32_t> rep(n + result.merges.size());
  std::iota(rep.begin(), rep.begin() + static_cast<std::ptrdiff_t>(n), 0u);
  for (std::size_t s = 0; s < result.merges.size(); ++s) {
    const auto& merge = result.merges[s];
    const std::uint32_t ra = find(rep[merge.left]);
    const std::uint32_t rb = find(rep[merge.right]);
    parent[rb] = ra;
    rep[n + s] = ra;
  }

  result.labels.assign(n, 0);
  std::vector<std::int64_t> label_of_root(n, -1);
  std::uint32_t next_label = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t root = find(static_cast<std::uint32_t>(i));
    if (label_of_root[root] < 0) label_of_root[root] = next_label++;
    result.labels[i] = static_cast<std::uint32_t>(label_of_root[root]);
  }
  result.num_clusters = next_label;
  return result;
}

}  // namespace ccdn
