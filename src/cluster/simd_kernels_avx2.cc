// AVX2 batch kernels — the ONLY translation unit compiled with -mavx2.
// Everything here is reached strictly through resolve_simd(), which gates
// on the cpuid probe, so no AVX2 instruction can execute on a CPU that
// lacks the feature. When CMake cannot enable AVX2 (non-x86 toolchain or
// -DCCDN_DISABLE_AVX2=ON) the same symbols compile as throwing stubs, so
// link structure and dispatch code are identical in every build.
#include "cluster/simd_kernels.h"

#include <exception>

#include "util/error.h"

#ifdef CCDN_SIMD_AVX2_COMPILED

#include <immintrin.h>

#include <bit>
#include <limits>

namespace ccdn::simd {

namespace {

/// Per-byte popcount of `v` (Muła's vpshufb nibble-LUT method): split each
/// byte into nibbles and look both up in the 16-entry popcount table
/// replicated across lanes. Every result byte is <= 8, so a byte-wise
/// accumulator can absorb 31 of these (<= 248 < 256) before it must be
/// flushed through SAD into 64-bit lanes.
inline __m256i popcount_bytes(__m256i v) {
  const __m256i nibble_lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(nibble_lut, lo),
                         _mm256_shuffle_epi8(nibble_lut, hi));
}

inline std::uint64_t horizontal_sum_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(sum, 1));
}

/// Gather steps a byte accumulator can take before a result byte could
/// overflow (31 * 8 = 248 <= 255).
constexpr std::size_t kFlushSteps = 31;

}  // namespace

void jaccard_tile_counts_avx2(const std::uint64_t* anchor_words,
                              const std::uint32_t* word_idx,
                              std::size_t num_words,
                              const std::uint64_t* rows,
                              std::size_t words_per_row, std::size_t num_rows,
                              std::uint64_t* counts) {
  // Four tile rows in flight per pass: the gathers are independent across
  // rows, so their latency overlaps, and each row keeps its own byte-wise
  // popcount accumulator (flushed through SAD every kFlushSteps gather
  // steps — sum order per row is unchanged, 64-bit adds are associative,
  // so the counts stay exact). Word indices fit i32 gather lanes by
  // construction: words_per_row is universe/64 and the universe is
  // bounded by the catalog size.
  const __m256i zero = _mm256_setzero_si256();
  std::size_t t = 0;
  for (; t + 4 <= num_rows; t += 4) {
    const auto* r0 = reinterpret_cast<const long long*>(
        rows + t * words_per_row);
    const auto* r1 = r0 + static_cast<std::ptrdiff_t>(words_per_row);
    const auto* r2 = r1 + static_cast<std::ptrdiff_t>(words_per_row);
    const auto* r3 = r2 + static_cast<std::ptrdiff_t>(words_per_row);
    __m256i acc0 = zero, acc1 = zero, acc2 = zero, acc3 = zero;
    __m256i b0 = zero, b1 = zero, b2 = zero, b3 = zero;
    std::size_t steps = 0;
    std::size_t k = 0;
    for (; k + 4 <= num_words; k += 4) {
      const __m128i idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(word_idx + k));
      const __m256i anchor = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(anchor_words + k));
      b0 = _mm256_add_epi8(b0, popcount_bytes(_mm256_and_si256(
          anchor, _mm256_i32gather_epi64(r0, idx, 8))));
      b1 = _mm256_add_epi8(b1, popcount_bytes(_mm256_and_si256(
          anchor, _mm256_i32gather_epi64(r1, idx, 8))));
      b2 = _mm256_add_epi8(b2, popcount_bytes(_mm256_and_si256(
          anchor, _mm256_i32gather_epi64(r2, idx, 8))));
      b3 = _mm256_add_epi8(b3, popcount_bytes(_mm256_and_si256(
          anchor, _mm256_i32gather_epi64(r3, idx, 8))));
      if (++steps == kFlushSteps) {
        acc0 = _mm256_add_epi64(acc0, _mm256_sad_epu8(b0, zero));
        acc1 = _mm256_add_epi64(acc1, _mm256_sad_epu8(b1, zero));
        acc2 = _mm256_add_epi64(acc2, _mm256_sad_epu8(b2, zero));
        acc3 = _mm256_add_epi64(acc3, _mm256_sad_epu8(b3, zero));
        b0 = b1 = b2 = b3 = zero;
        steps = 0;
      }
    }
    acc0 = _mm256_add_epi64(acc0, _mm256_sad_epu8(b0, zero));
    acc1 = _mm256_add_epi64(acc1, _mm256_sad_epu8(b1, zero));
    acc2 = _mm256_add_epi64(acc2, _mm256_sad_epu8(b2, zero));
    acc3 = _mm256_add_epi64(acc3, _mm256_sad_epu8(b3, zero));
    std::uint64_t c0 = horizontal_sum_epi64(acc0);
    std::uint64_t c1 = horizontal_sum_epi64(acc1);
    std::uint64_t c2 = horizontal_sum_epi64(acc2);
    std::uint64_t c3 = horizontal_sum_epi64(acc3);
    for (; k < num_words; ++k) {  // tail: num_words % 4 scalar words
      const std::uint64_t a = anchor_words[k];
      const std::uint32_t w = word_idx[k];
      c0 += static_cast<std::uint64_t>(std::popcount(
          a & static_cast<std::uint64_t>(r0[w])));
      c1 += static_cast<std::uint64_t>(std::popcount(
          a & static_cast<std::uint64_t>(r1[w])));
      c2 += static_cast<std::uint64_t>(std::popcount(
          a & static_cast<std::uint64_t>(r2[w])));
      c3 += static_cast<std::uint64_t>(std::popcount(
          a & static_cast<std::uint64_t>(r3[w])));
    }
    counts[t] = c0;
    counts[t + 1] = c1;
    counts[t + 2] = c2;
    counts[t + 3] = c3;
  }
  // Remaining 0-3 rows: single-row gather loop, same accumulation order.
  for (; t < num_rows; ++t) {
    const std::uint64_t* row = rows + t * words_per_row;
    const auto* base = reinterpret_cast<const long long*>(row);
    __m256i acc = zero;
    __m256i bytes = zero;
    std::size_t steps = 0;
    std::size_t k = 0;
    for (; k + 4 <= num_words; k += 4) {
      const __m128i idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(word_idx + k));
      const __m256i anchor = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(anchor_words + k));
      bytes = _mm256_add_epi8(bytes, popcount_bytes(_mm256_and_si256(
          anchor, _mm256_i32gather_epi64(base, idx, 8))));
      if (++steps == kFlushSteps) {
        acc = _mm256_add_epi64(acc, _mm256_sad_epu8(bytes, zero));
        bytes = zero;
        steps = 0;
      }
    }
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(bytes, zero));
    std::uint64_t intersection = horizontal_sum_epi64(acc);
    for (; k < num_words; ++k) {
      intersection += static_cast<std::uint64_t>(
          std::popcount(anchor_words[k] & row[word_idx[k]]));
    }
    counts[t] = intersection;
  }
}

void jaccard_tile_counts_transposed_avx2(
    const std::uint64_t* anchor_words, const std::uint32_t* word_idx,
    std::size_t num_words, const std::uint64_t* tile_words, std::size_t stride,
    std::size_t num_rows, std::uint64_t* counts) {
  // Sixteen tile rows (four vectors) in flight per pass: one anchor-word
  // broadcast feeds four contiguous 256-bit loads from the transposed
  // tile, so the loop is pure load/AND/popcount throughput — the gathers
  // of the row-major kernel are gone entirely. Each 64-bit lane owns one
  // tile row; _mm256_sad_epu8 flushes the byte accumulators straight into
  // per-row 64-bit counts (no cross-lane mixing), so the stored counts are
  // the same exact integers as the scalar kernel's.
  const __m256i zero = _mm256_setzero_si256();
  std::size_t t = 0;
  for (; t + 16 <= num_rows; t += 16) {
    __m256i acc0 = zero, acc1 = zero, acc2 = zero, acc3 = zero;
    __m256i b0 = zero, b1 = zero, b2 = zero, b3 = zero;
    std::size_t steps = 0;
    for (std::size_t k = 0; k < num_words; ++k) {
      const __m256i anchor =
          _mm256_set1_epi64x(static_cast<long long>(anchor_words[k]));
      const std::uint64_t* lanes = tile_words + word_idx[k] * stride + t;
      b0 = _mm256_add_epi8(b0, popcount_bytes(_mm256_and_si256(
          anchor, _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(lanes)))));
      b1 = _mm256_add_epi8(b1, popcount_bytes(_mm256_and_si256(
          anchor, _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(lanes + 4)))));
      b2 = _mm256_add_epi8(b2, popcount_bytes(_mm256_and_si256(
          anchor, _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(lanes + 8)))));
      b3 = _mm256_add_epi8(b3, popcount_bytes(_mm256_and_si256(
          anchor, _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(lanes + 12)))));
      if (++steps == kFlushSteps) {
        acc0 = _mm256_add_epi64(acc0, _mm256_sad_epu8(b0, zero));
        acc1 = _mm256_add_epi64(acc1, _mm256_sad_epu8(b1, zero));
        acc2 = _mm256_add_epi64(acc2, _mm256_sad_epu8(b2, zero));
        acc3 = _mm256_add_epi64(acc3, _mm256_sad_epu8(b3, zero));
        b0 = b1 = b2 = b3 = zero;
        steps = 0;
      }
    }
    acc0 = _mm256_add_epi64(acc0, _mm256_sad_epu8(b0, zero));
    acc1 = _mm256_add_epi64(acc1, _mm256_sad_epu8(b1, zero));
    acc2 = _mm256_add_epi64(acc2, _mm256_sad_epu8(b2, zero));
    acc3 = _mm256_add_epi64(acc3, _mm256_sad_epu8(b3, zero));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(counts + t), acc0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(counts + t + 4), acc1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(counts + t + 8), acc2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(counts + t + 12), acc3);
  }
  // Remaining 0-15 rows: scalar column walk (strided but tiny).
  for (; t < num_rows; ++t) {
    std::uint64_t intersection = 0;
    for (std::size_t k = 0; k < num_words; ++k) {
      intersection += static_cast<std::uint64_t>(std::popcount(
          anchor_words[k] & tile_words[word_idx[k] * stride + t]));
    }
    counts[t] = intersection;
  }
}

void counts_to_similarity_avx2(const std::uint64_t* counts,
                               const std::uint32_t* cards,
                               std::uint32_t anchor_card, std::size_t num_rows,
                               double* out) {
  // Counts and cardinalities are bounded by the universe (< 2^31), so the
  // arithmetic fits signed 32-bit lanes and _mm256_cvtepi32_pd converts
  // exactly; vdivpd is correctly rounded like scalar division, so every
  // lane matches the scalar kernel bit for bit. Empty unions divide by a
  // blended-in 1.0 (avoiding a spurious 0/0) and the quotient lane is then
  // forced to 0.0, the two-empty-sets convention.
  const __m256i even_dwords = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  const __m128i anchor = _mm_set1_epi32(static_cast<int>(anchor_card));
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d zero_pd = _mm256_setzero_pd();
  std::size_t t = 0;
  for (; t + 4 <= num_rows; t += 4) {
    const __m256i counts64 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(counts + t));
    const __m128i counts32 = _mm256_castsi256_si128(
        _mm256_permutevar8x32_epi32(counts64, even_dwords));
    const __m128i unions32 = _mm_sub_epi32(
        _mm_add_epi32(anchor, _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                                  cards + t))),
        counts32);
    const __m256d empty = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(
        _mm_cmpeq_epi32(unions32, _mm_setzero_si128())));
    const __m256d divisor = _mm256_blendv_pd(
        _mm256_cvtepi32_pd(unions32), one, empty);
    const __m256d quotient =
        _mm256_div_pd(_mm256_cvtepi32_pd(counts32), divisor);
    _mm256_storeu_pd(out + t, _mm256_blendv_pd(quotient, zero_pd, empty));
  }
  for (; t < num_rows; ++t) {
    const std::uint64_t union_size = anchor_card + cards[t] - counts[t];
    out[t] = union_size == 0
                 ? 0.0
                 : static_cast<double>(counts[t]) /
                       static_cast<double>(union_size);
  }
}

double masked_min_avx2(const double* values, const std::uint8_t* mask,
                       std::size_t count) noexcept {
  const __m256d inf =
      _mm256_set1_pd(std::numeric_limits<double>::infinity());
  __m256d best = inf;
  std::size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256d v = _mm256_loadu_pd(values + k);
    // Widen 4 mask bytes to 64-bit lanes; lanes with mask==0 read +inf so
    // they can never win the min.
    const __m128i mask_bytes = _mm_cvtsi32_si128(static_cast<int>(
        std::uint32_t{mask[k]} | (std::uint32_t{mask[k + 1]} << 8) |
        (std::uint32_t{mask[k + 2]} << 16) |
        (std::uint32_t{mask[k + 3]} << 24)));
    const __m256i lanes = _mm256_cvtepu8_epi64(mask_bytes);
    const __m256d inactive = _mm256_castsi256_pd(
        _mm256_cmpeq_epi64(lanes, _mm256_setzero_si256()));
    best = _mm256_min_pd(best, _mm256_blendv_pd(v, inf, inactive));
  }
  const __m128d folded = _mm_min_pd(_mm256_castpd256_pd128(best),
                                    _mm256_extractf128_pd(best, 1));
  double result =
      _mm_cvtsd_f64(_mm_min_sd(folded, _mm_unpackhi_pd(folded, folded)));
  for (; k < count; ++k) {
    if (mask[k] != 0 && values[k] < result) result = values[k];
  }
  return result;
}

}  // namespace ccdn::simd

#else  // !CCDN_SIMD_AVX2_COMPILED

namespace ccdn::simd {

void jaccard_tile_counts_avx2(const std::uint64_t*, const std::uint32_t*,
                              std::size_t, const std::uint64_t*, std::size_t,
                              std::size_t, std::uint64_t*) {
  CCDN_REQUIRE(false, "AVX2 kernel not compiled into this binary");
}

void jaccard_tile_counts_transposed_avx2(const std::uint64_t*,
                                         const std::uint32_t*, std::size_t,
                                         const std::uint64_t*, std::size_t,
                                         std::size_t, std::uint64_t*) {
  CCDN_REQUIRE(false, "AVX2 kernel not compiled into this binary");
}

void counts_to_similarity_avx2(const std::uint64_t*, const std::uint32_t*,
                               std::uint32_t, std::size_t, double*) {
  CCDN_REQUIRE(false, "AVX2 kernel not compiled into this binary");
}

double masked_min_avx2(const double*, const std::uint8_t*,
                       std::size_t) noexcept {
  // noexcept contract: unreachable through resolve_simd(), which refuses
  // kAvx2 when the kernel is absent; terminate loudly if called anyway.
  std::terminate();
}

}  // namespace ccdn::simd

#endif  // CCDN_SIMD_AVX2_COMPILED
