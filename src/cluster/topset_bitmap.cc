#include "cluster/topset_bitmap.h"

#include <algorithm>
#include <bit>

#include "util/error.h"

namespace ccdn {

TopsetBitmap::TopsetBitmap(std::span<const std::vector<VideoId>> top_sets)
    : n_(top_sets.size()) {
  // Gather every id occurrence; sortedness (the jaccard_similarity
  // precondition) is checked once per set here instead of once per pair.
  std::vector<VideoId> occurrences;
  std::size_t total = 0;
  for (const auto& set : top_sets) total += set.size();
  occurrences.reserve(total);
  for (const auto& set : top_sets) {
    CCDN_REQUIRE(std::is_sorted(set.begin(), set.end()), "top set not sorted");
    occurrences.insert(occurrences.end(), set.begin(), set.end());
  }
  std::sort(occurrences.begin(), occurrences.end());

  // Run-length the occurrences into (id, count); `ids` stays sorted by id
  // for the pack-time lookups below.
  std::vector<VideoId> ids;
  std::vector<std::uint32_t> counts;
  for (std::size_t i = 0; i < occurrences.size();) {
    std::size_t j = i;
    while (j < occurrences.size() && occurrences[j] == occurrences[i]) ++j;
    ids.push_back(occurrences[i]);
    counts.push_back(static_cast<std::uint32_t>(j - i));
    i = j;
  }
  universe_ = ids.size();
  words_ = (universe_ + 63) / 64;

  // Rank ids by (count desc, id asc): the shared popular head lands in the
  // lowest words. Deterministic — the key is a strict total order.
  std::vector<std::uint32_t> by_frequency(universe_);
  for (std::uint32_t i = 0; i < universe_; ++i) by_frequency[i] = i;
  std::sort(by_frequency.begin(), by_frequency.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (counts[a] != counts[b]) return counts[a] > counts[b];
              return ids[a] < ids[b];
            });
  std::vector<std::uint32_t> rank_of(universe_);
  for (std::uint32_t r = 0; r < universe_; ++r) rank_of[by_frequency[r]] = r;

  bits_.assign(n_ * words_, 0);
  cardinality_.resize(n_);
  nonzero_begin_.assign(n_ + 1, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    cardinality_[i] = static_cast<std::uint32_t>(top_sets[i].size());
    std::uint64_t* row = bits_.data() + i * words_;
    for (const VideoId v : top_sets[i]) {
      const auto it = std::lower_bound(ids.begin(), ids.end(), v);
      const auto rank = rank_of[static_cast<std::size_t>(it - ids.begin())];
      const std::uint64_t bit = std::uint64_t{1} << (rank % 64);
      CCDN_REQUIRE((row[rank / 64] & bit) == 0, "duplicate id in top set");
      row[rank / 64] |= bit;
    }
    for (std::uint32_t w = 0; w < words_; ++w) {
      if (row[w] != 0) nonzero_.push_back(w);
    }
    nonzero_begin_[i + 1] = static_cast<std::uint32_t>(nonzero_.size());
  }
}

double TopsetBitmap::jaccard(std::size_t i, std::size_t j) const {
  CCDN_ASSERT(i < n_ && j < n_, "set index out of range");
  // Iterate the sparser row's nonzero words, gathering from the other row.
  if (nonzero_begin_[i + 1] - nonzero_begin_[i] >
      nonzero_begin_[j + 1] - nonzero_begin_[j]) {
    std::swap(i, j);
  }
  const std::uint64_t* a = bits_.data() + i * words_;
  const std::uint64_t* b = bits_.data() + j * words_;
  std::uint64_t intersection = 0;
  for (std::uint32_t k = nonzero_begin_[i]; k < nonzero_begin_[i + 1]; ++k) {
    const std::uint32_t w = nonzero_[k];
    intersection += static_cast<std::uint64_t>(std::popcount(a[w] & b[w]));
  }
  const std::uint64_t union_size =
      cardinality_[i] + cardinality_[j] - intersection;
  if (union_size == 0) return 0.0;  // two empty sets, as in the scalar path
  return static_cast<double>(intersection) / static_cast<double>(union_size);
}

}  // namespace ccdn
