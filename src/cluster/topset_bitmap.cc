#include "cluster/topset_bitmap.h"

#include <algorithm>
#include <bit>

#include "cluster/simd_kernels.h"
#include "util/error.h"

namespace ccdn {

namespace {

/// Per-call kernel scratch: stack storage for the common shapes (the
/// tile-major pairwise sweep makes ~n²/tile calls, so a heap allocation
/// per call would show up); the spill vector only engages for huge
/// universes or tiles.
struct KernelScratch {
  static constexpr std::size_t kStack = 512;
  std::uint64_t stack[kStack];
  std::vector<std::uint64_t> spill;

  std::uint64_t* get(std::size_t need) {
    if (need <= kStack) return stack;
    spill.resize(need);
    return spill.data();
  }
};

}  // namespace

TopsetBitmap::TopsetBitmap(std::span<const std::vector<VideoId>> top_sets)
    : n_(top_sets.size()) {
  // Tally occurrences per id with a direct table over [0, max id] — ids
  // are dense catalog indices, so this is O(total ids + max id) and
  // replaces the sort of every occurrence the first version needed.
  // Sortedness (the jaccard_similarity precondition) is checked once per
  // set here instead of once per pair.
  VideoId max_id = 0;
  for (const auto& set : top_sets) {
    CCDN_REQUIRE(std::is_sorted(set.begin(), set.end()), "top set not sorted");
    if (!set.empty()) max_id = std::max(max_id, set.back());
  }
  std::vector<std::uint32_t> table_of_id(
      static_cast<std::size_t>(max_id) + 1, 0);
  for (const auto& set : top_sets) {
    for (const VideoId v : set) ++table_of_id[v];
  }

  // Collect the distinct ids (the index scan keeps `ids` sorted by id).
  std::vector<VideoId> ids;
  std::vector<std::uint32_t> counts;
  for (std::size_t id = 0; id < table_of_id.size(); ++id) {
    if (table_of_id[id] != 0) {
      ids.push_back(static_cast<VideoId>(id));
      counts.push_back(table_of_id[id]);
    }
  }
  universe_ = ids.size();
  words_ = (universe_ + 63) / 64;

  // Rank ids by (count desc, id asc): the shared popular head lands in the
  // lowest words. Deterministic — the key is a strict total order.
  std::vector<std::uint32_t> by_frequency(universe_);
  for (std::uint32_t i = 0; i < universe_; ++i) by_frequency[i] = i;
  std::sort(by_frequency.begin(), by_frequency.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (counts[a] != counts[b]) return counts[a] > counts[b];
              return ids[a] < ids[b];
            });
  // Reuse the tally table as the direct id→rank map so the packing loop
  // below is O(1) per id instead of a per-id binary search over the
  // universe. Sized by the largest id seen, which the video catalog bounds
  // (VideoId is a dense catalog index), so the table is O(catalog) once
  // per pack, not per set.
  std::vector<std::uint32_t>& rank_of_id = table_of_id;
  for (std::uint32_t r = 0; r < universe_; ++r) {
    rank_of_id[ids[by_frequency[r]]] = r;
  }

  bits_.assign(n_ * words_, 0);
  cardinality_.resize(n_);
  nonzero_begin_.assign(n_ + 1, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    cardinality_[i] = static_cast<std::uint32_t>(top_sets[i].size());
    std::uint64_t* row = bits_.data() + i * words_;
    for (const VideoId v : top_sets[i]) {
      const std::uint32_t rank = rank_of_id[v];
      const std::uint64_t bit = std::uint64_t{1} << (rank % 64);
      CCDN_REQUIRE((row[rank / 64] & bit) == 0, "duplicate id in top set");
      row[rank / 64] |= bit;
    }
    for (std::uint32_t w = 0; w < words_; ++w) {
      if (row[w] != 0) nonzero_.push_back(w);
    }
    nonzero_begin_[i + 1] = static_cast<std::uint32_t>(nonzero_.size());
  }
}

double TopsetBitmap::jaccard(std::size_t i, std::size_t j) const {
  CCDN_ASSERT(i < n_ && j < n_, "set index out of range");
  // Iterate the sparser row's nonzero words, gathering from the other row.
  if (nonzero_begin_[i + 1] - nonzero_begin_[i] >
      nonzero_begin_[j + 1] - nonzero_begin_[j]) {
    std::swap(i, j);
  }
  const std::uint64_t* a = bits_.data() + i * words_;
  const std::uint64_t* b = bits_.data() + j * words_;
  std::uint64_t intersection = 0;
  for (std::uint32_t k = nonzero_begin_[i]; k < nonzero_begin_[i + 1]; ++k) {
    const std::uint32_t w = nonzero_[k];
    intersection += static_cast<std::uint64_t>(std::popcount(a[w] & b[w]));
  }
  const std::uint64_t union_size =
      cardinality_[i] + cardinality_[j] - intersection;
  if (union_size == 0) return 0.0;  // two empty sets, as in the scalar path
  return static_cast<double>(intersection) / static_cast<double>(union_size);
}

void TopsetBitmap::jaccard_row(std::size_t i, std::size_t j_begin,
                               std::size_t j_end, std::span<double> out,
                               SimdMode simd) const {
  CCDN_REQUIRE(i < n_ && j_begin <= j_end && j_end <= n_,
               "row range out of bounds");
  CCDN_REQUIRE(out.size() == j_end - j_begin,
               "out span must cover exactly the tile");
  if (j_begin == j_end) return;
  const bool use_avx2 = resolve_simd(simd);

  // Compact the anchor's nonzero words once for the whole tile: the word
  // indices drive the per-row (scalar or AVX2-gathered) loads and the
  // values are the AND mask, resident in L1 while tile rows stream by.
  const std::uint32_t* word_idx = nonzero_.data() + nonzero_begin_[i];
  const std::size_t num_words = nonzero_begin_[i + 1] - nonzero_begin_[i];
  const std::uint64_t* anchor_row = bits_.data() + i * words_;
  KernelScratch anchor_scratch;
  std::uint64_t* anchor_words = anchor_scratch.get(num_words);
  for (std::size_t k = 0; k < num_words; ++k) {
    anchor_words[k] = anchor_row[word_idx[k]];
  }

  const std::size_t tile = j_end - j_begin;
  KernelScratch counts_scratch;
  std::uint64_t* counts = counts_scratch.get(tile);
  const std::uint64_t* rows = bits_.data() + j_begin * words_;
  if (use_avx2) {
    simd::jaccard_tile_counts_avx2(anchor_words, word_idx, num_words, rows,
                                   words_, tile, counts);
  } else {
    simd::jaccard_tile_counts_scalar(anchor_words, word_idx, num_words, rows,
                                     words_, tile, counts);
  }

  if (use_avx2) {
    simd::counts_to_similarity_avx2(counts, cardinality_.data() + j_begin,
                                    cardinality_[i], tile, out.data());
  } else {
    simd::counts_to_similarity_scalar(counts, cardinality_.data() + j_begin,
                                      cardinality_[i], tile, out.data());
  }
}

void TopsetBitmap::pack_tile(std::size_t j_begin, std::size_t j_end,
                             RowTile& tile) const {
  CCDN_REQUIRE(j_begin <= j_end && j_end <= n_, "tile range out of bounds");
  const std::size_t rows = j_end - j_begin;
  tile.j_begin_ = j_begin;
  tile.j_end_ = j_end;
  tile.words_.resize(words_ * rows);
  for (std::size_t t = 0; t < rows; ++t) {
    const std::uint64_t* row = bits_.data() + (j_begin + t) * words_;
    std::uint64_t* lane = tile.words_.data() + t;
    for (std::size_t w = 0; w < words_; ++w) lane[w * rows] = row[w];
  }
}

void TopsetBitmap::jaccard_row(std::size_t i, const RowTile& tile,
                               std::size_t j_begin, std::span<double> out,
                               SimdMode simd) const {
  CCDN_REQUIRE(i < n_ && tile.j_begin_ <= j_begin && j_begin <= tile.j_end_ &&
                   tile.j_end_ <= n_,
               "anchor or tile range out of bounds");
  CCDN_REQUIRE(out.size() == tile.j_end_ - j_begin,
               "out span must cover exactly the tile remainder");
  if (!resolve_simd(simd)) {
    // The transposed layout only pays off with 256-bit lanes; a scalar
    // walk would stride the cache for no gain, so delegate to row-major.
    jaccard_row(i, j_begin, tile.j_end_, out, SimdMode::kScalar);
    return;
  }
  if (j_begin == tile.j_end_) return;

  const std::uint32_t* word_idx = nonzero_.data() + nonzero_begin_[i];
  const std::size_t num_words = nonzero_begin_[i + 1] - nonzero_begin_[i];
  const std::uint64_t* anchor_row = bits_.data() + i * words_;
  KernelScratch anchor_scratch;
  std::uint64_t* anchor_words = anchor_scratch.get(num_words);
  for (std::size_t k = 0; k < num_words; ++k) {
    anchor_words[k] = anchor_row[word_idx[k]];
  }

  const std::size_t count = tile.j_end_ - j_begin;
  KernelScratch counts_scratch;
  std::uint64_t* counts = counts_scratch.get(count);
  // Lane t of the packed tile is row tile.j_begin_ + t; anchors starting
  // inside the tile (the sweep's diagonal) enter at lane j_begin - j_begin_.
  const std::size_t stride = tile.j_end_ - tile.j_begin_;
  simd::jaccard_tile_counts_transposed_avx2(
      anchor_words, word_idx, num_words,
      tile.words_.data() + (j_begin - tile.j_begin_), stride, count, counts);
  simd::counts_to_similarity_avx2(counts, cardinality_.data() + j_begin,
                                  cardinality_[i], count, out.data());
}

}  // namespace ccdn
