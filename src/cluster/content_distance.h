// Content-aware distance between hotspots (paper Eq. 13):
//   Jd(i, j) = 1 − Jaccard(V_i, V_j)
// where V_i is hotspot i's Top-20% requested-video set.
#pragma once

#include <span>
#include <vector>

#include "cluster/hierarchical.h"
#include "model/types.h"
#include "util/cpu_features.h"

namespace ccdn {

class ThreadPool;

struct ContentDistanceOptions {
  /// Compute Jaccard with the word-parallel TopsetBitmap kernel (default)
  /// or the scalar sorted-merge path. Both produce bit-identical matrices;
  /// the scalar path is kept as the differential-test oracle and as an
  /// ablation knob (RbcaerConfig::bitmap_jaccard).
  bool use_bitmap = true;
  /// When non-null, the condensed matrix is filled row-striped on this
  /// pool: stripes are contiguous row ranges balanced by pair count, each
  /// writing a disjoint slice of the condensed buffer, so the result is
  /// bit-identical for any thread count.
  ThreadPool* pool = nullptr;
  /// SIMD path for the bitmap kernel's batch rows (TopsetBitmap::
  /// jaccard_row): auto picks AVX2 when compiled in and the CPU has it,
  /// scalar pins the popcount loop, avx2 throws when unavailable. Every
  /// mode is bit-identical (DESIGN.md §3.14). Ignored on the sorted-merge
  /// path.
  SimdMode simd = SimdMode::kAuto;
  /// Rows per tile of the tile-major bitmap sweep; 0 picks the default
  /// (128 rows — tile_rows x words_per_set x 8 B stays inside L2 at
  /// city-scale universes, and the tile is reused across every anchor of
  /// a stripe). Any value produces the identical matrix; the knob exists
  /// for the tile-boundary differential tests.
  std::size_t tile_rows = 0;
};

/// Build the pairwise Jd matrix from per-hotspot content sets (each sorted
/// ascending by video id). Hotspots with empty sets are at distance 1 from
/// everything (no overlap evidence).
[[nodiscard]] DistanceMatrix content_distance_matrix(
    std::span<const std::vector<VideoId>> top_sets,
    const ContentDistanceOptions& options = {});

}  // namespace ccdn
