// Content-aware distance between hotspots (paper Eq. 13):
//   Jd(i, j) = 1 − Jaccard(V_i, V_j)
// where V_i is hotspot i's Top-20% requested-video set.
#pragma once

#include <span>
#include <vector>

#include "cluster/hierarchical.h"
#include "model/types.h"

namespace ccdn {

/// Build the pairwise Jd matrix from per-hotspot content sets (each sorted
/// ascending by video id). Hotspots with empty sets are at distance 1 from
/// everything (no overlap evidence).
[[nodiscard]] DistanceMatrix content_distance_matrix(
    std::span<const std::vector<VideoId>> top_sets);

}  // namespace ccdn
