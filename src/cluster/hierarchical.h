// Agglomerative hierarchical clustering (paper §IV-B, citing Johnson 1967).
//
// RBCAer clusters hotspots by content-aware distance Jd = 1 − Jaccard and
// cuts the dendrogram so that no two members of a cluster are farther apart
// than 0.5 (complete linkage realizes that guarantee exactly).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/cpu_features.h"

namespace ccdn {

enum class Linkage { kSingle, kComplete, kAverage };

/// Symmetric pairwise distances with condensed upper-triangle storage.
/// Diagonal is implicitly zero.
class DistanceMatrix {
 public:
  explicit DistanceMatrix(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  [[nodiscard]] double at(std::size_t i, std::size_t j) const;
  void set(std::size_t i, std::size_t j, double distance);

  /// Raw condensed upper triangle, row-major: entry (i, j) with i < j lives
  /// at i*n - i*(i+1)/2 + (j-i-1), so row i's entries (i, i+1..n-1) are a
  /// contiguous slice of length n-1-i. Bulk producers (the parallel Jd
  /// build) write disjoint row slices directly; consumers memcpy the whole
  /// triangle instead of going through at() per pair.
  [[nodiscard]] std::span<const double> condensed() const noexcept {
    return data_;
  }
  [[nodiscard]] std::span<double> condensed() noexcept { return data_; }

 private:
  [[nodiscard]] std::size_t slot(std::size_t i, std::size_t j) const;

  std::size_t n_;
  std::vector<double> data_;
};

/// One merge step of the dendrogram (children may be leaves [0,n) or prior
/// merges [n, n+step)).
struct MergeStep {
  std::uint32_t left = 0;
  std::uint32_t right = 0;
  double distance = 0.0;
};

struct ClusteringResult {
  /// Cluster label per item, 0..num_clusters-1, labelled by order of first
  /// member.
  std::vector<std::uint32_t> labels;
  std::size_t num_clusters = 0;
  /// Full merge history (useful for dendrogram inspection in tests).
  std::vector<MergeStep> merges;
};

/// Cluster items, merging while the linkage distance is <= threshold.
/// With complete linkage this guarantees every intra-cluster pairwise
/// distance is <= threshold (the paper's Jd <= 0.5 rule).
///
/// `simd` selects the kernel for the two nearest-neighbour argmin scans
/// (the per-slot recompute over a condensed row and the global
/// closest-pair sweep): both batch a masked SIMD min-reduce and recover
/// the scalar first-index tie-break with an equality rescan, so the
/// result — merges, labels, and every recorded distance — is identical
/// for every mode (DESIGN.md §3.14).
[[nodiscard]] ClusteringResult hierarchical_cluster(
    const DistanceMatrix& distances, Linkage linkage, double threshold,
    SimdMode simd = SimdMode::kAuto);

}  // namespace ccdn
