// Batch SIMD kernels for the Gc pipeline's two hot loops (DESIGN.md §3.14):
//
//  * `jaccard_tile_counts_*` — one anchor row of a TopsetBitmap against a
//    tile of consecutive rows: the anchor's nonzero-word index list and the
//    matching word values stay resident (registers/L1) while the tile rows
//    stream through linearly. The AVX2 variant gathers four 64-bit words
//    per step with `_mm256_i32gather_epi64`, ANDs against the anchor lanes,
//    and popcounts in-register with a vpshufb nibble LUT accumulated via
//    `_mm256_sad_epu8` (Muła's method; the Harley–Seal family). Both
//    variants produce the IDENTICAL exact integer intersection counts —
//    64-bit integer additions of popcounts are associative, so lane order
//    cannot change a single bit of the derived Jaccard double.
//  * `masked_min_*` — minimum over a contiguous double slice restricted to
//    an active mask: the hierarchical clustering nearest-neighbour scan.
//    min over doubles is exact and order-free (no NaNs by DistanceMatrix's
//    set() contract), so callers recover the scalar first-index semantics
//    with a cheap `== min` rescan.
//
// The AVX2 variants live in simd_kernels_avx2.cc, the only TU compiled
// with -mavx2 (CMake sets CCDN_SIMD_AVX2_COMPILED on the cluster library
// when the compiler takes the flag and CCDN_DISABLE_AVX2 is off). Callers
// never invoke them directly — they go through SimdMode dispatch
// (resolve_simd below), which only selects AVX2 after the cpuid probe, so
// the binary is safe on any x86-64 and degrades to scalar elsewhere.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/cpu_features.h"

namespace ccdn {

/// True when this binary contains the AVX2 kernels (compile-time property).
[[nodiscard]] bool avx2_kernel_compiled() noexcept;

/// True when the AVX2 kernels are compiled in AND the CPU reports AVX2.
[[nodiscard]] bool avx2_kernel_available() noexcept;

/// Collapse a SimdMode to the concrete kernel choice: kAuto picks AVX2 when
/// available, kScalar always resolves scalar, kAvx2 throws
/// PreconditionError when the AVX2 path cannot run (never a silent
/// downgrade). Returns true for AVX2.
[[nodiscard]] bool resolve_simd(SimdMode mode);

namespace simd {

/// counts[t] = Σ_k popcount(anchor_words[k] & rows[t * words_per_row +
/// word_idx[k]]) for t in [0, num_rows): the exact intersection
/// cardinality of the anchor set with each tile row. `anchor_words[k]` is
/// the anchor row's word at index `word_idx[k]` (pre-compacted by the
/// caller); `rows` points at the first tile row.
void jaccard_tile_counts_scalar(const std::uint64_t* anchor_words,
                                const std::uint32_t* word_idx,
                                std::size_t num_words,
                                const std::uint64_t* rows,
                                std::size_t words_per_row,
                                std::size_t num_rows, std::uint64_t* counts);

/// AVX2 gather/popcount variant; bit-identical counts. Only callable when
/// avx2_kernel_available() (enforced by resolve_simd; calling it on a CPU
/// without AVX2 is undefined).
void jaccard_tile_counts_avx2(const std::uint64_t* anchor_words,
                              const std::uint32_t* word_idx,
                              std::size_t num_words,
                              const std::uint64_t* rows,
                              std::size_t words_per_row, std::size_t num_rows,
                              std::uint64_t* counts);

/// Word-major variant of jaccard_tile_counts_avx2 for a pre-transposed
/// tile: tile_words[w * stride + t] is word w of tile row t, so the same
/// word of 4 consecutive rows is one contiguous 256-bit load ANDed against
/// a broadcast anchor word — each 64-bit lane accumulates its own row's
/// popcount and no gather instructions are needed. counts[t] is the exact
/// intersection cardinality for t in [0, num_rows) (num_rows <= stride;
/// callers may offset tile_words by a lane to start mid-tile). Bit-
/// identical counts to the scalar and gather kernels.
void jaccard_tile_counts_transposed_avx2(
    const std::uint64_t* anchor_words, const std::uint32_t* word_idx,
    std::size_t num_words, const std::uint64_t* tile_words, std::size_t stride,
    std::size_t num_rows, std::uint64_t* counts);

/// out[t] = counts[t] / (anchor_card + cards[t] - counts[t]) as a double,
/// or 0.0 when that union is empty (two empty sets) — the Jaccard
/// similarity from exact intersection counts. All operands are integers
/// below 2^53 (exactly representable) and IEEE division is correctly
/// rounded, so scalar and AVX2 produce identical bits per element.
void counts_to_similarity_scalar(const std::uint64_t* counts,
                                 const std::uint32_t* cards,
                                 std::uint32_t anchor_card,
                                 std::size_t num_rows, double* out);

/// AVX2 variant (packed 32-bit integer union + vdivpd); bit-identical.
void counts_to_similarity_avx2(const std::uint64_t* counts,
                               const std::uint32_t* cards,
                               std::uint32_t anchor_card, std::size_t num_rows,
                               double* out);

/// min over values[k] with mask[k] != 0; +infinity when the mask is empty.
/// Exact (IEEE min, no reassociation hazard), so scalar and AVX2 agree
/// bitwise on any input without NaNs.
[[nodiscard]] double masked_min_scalar(const double* values,
                                       const std::uint8_t* mask,
                                       std::size_t count) noexcept;

/// AVX2 variant of masked_min_scalar. The returned value is equal under
/// operator== (when −0.0 and +0.0 are both present the winning zero's sign
/// may differ from the scalar scan — callers locate indices by rescanning
/// with ==, so the selected element is identical either way).
[[nodiscard]] double masked_min_avx2(const double* values,
                                     const std::uint8_t* mask,
                                     std::size_t count) noexcept;

}  // namespace simd
}  // namespace ccdn
