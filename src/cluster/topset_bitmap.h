// Word-parallel content-similarity kernel for the Gc pipeline.
//
// The Jd matrix (paper Eq. 13) needs Jaccard(V_i, V_j) over every hotspot
// pair — H² evaluations per slot. The scalar path walks two sorted id
// vectors element by element (and re-validates sortedness per pair).
// TopsetBitmap instead packs every top-set into 64-bit blocks over a
// compact universe so one AND+popcount processes 64 candidate ids at once:
//
//  1. *Universe remap.* Only ids that appear in some top-set matter. They
//     are remapped to a dense range [0, U), ordered by descending
//     occurrence count across sets (ties by ascending id). Zipf-skewed
//     workloads share a popular head, so frequency ordering packs the ids
//     most likely to be in any given set into the lowest words, which
//     keeps each set's nonzero-word list short. Packing resolves each id
//     through a direct id→rank table built once after the run-length pass,
//     so the whole pack is O(total ids + max id).
//  2. *Block layout.* Set i owns the row bits_[i*words .. (i+1)*words);
//     bit d of the row is id rank d. Rows are contiguous, so a pairwise
//     sweep over j streams row j linearly through the cache.
//  3. *Sparse-gather intersection.* |V_i ∩ V_j| = Σ popcount(a[w] & b[w]),
//     iterating only the nonzero words of the *smaller* set — O(min
//     nonzero words) per pair instead of O(|V_i|+|V_j|) element steps.
//     The union comes from the precomputed cardinalities, and sortedness
//     of the input sets is validated once per set at pack time, not once
//     per pair.
//  4. *Batch rows.* jaccard_row() evaluates one anchor row against a tile
//     of consecutive rows in a single pass: the anchor's nonzero-word
//     indices and values are compacted once and stay hot while the tile
//     rows stream through linearly. The inner kernel is SimdMode-
//     dispatched (scalar popcount or the AVX2 gather/vpshufb engine,
//     DESIGN.md §3.14); both accumulate the same exact integer
//     intersection counts.
//
// The computed similarity is bit-identical to jaccard_similarity under
// every kernel: all paths divide the same exact integer intersection and
// union counts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/types.h"
#include "util/cpu_features.h"

namespace ccdn {

class TopsetBitmap {
 public:
  /// Word-major (transposed) copy of a row tile [j_begin, j_end): lane t of
  /// word w lives at words_[w * rows + t], so the AVX2 kernel reads the
  /// same word of consecutive rows with one contiguous 256-bit load and
  /// broadcasts the anchor word — no gathers at all. Built once per tile by
  /// pack_tile() and reused across every anchor of the tile-major sweep
  /// (the transpose is O(rows x words), amortised over ~n anchors).
  /// Reassignable: pack_tile reuses the buffer's capacity across tiles.
  class RowTile {
   public:
    RowTile() = default;
    [[nodiscard]] std::size_t j_begin() const noexcept { return j_begin_; }
    [[nodiscard]] std::size_t j_end() const noexcept { return j_end_; }

   private:
    friend class TopsetBitmap;
    std::vector<std::uint64_t> words_;  // words_per_set x rows, word-major
    std::size_t j_begin_ = 0;
    std::size_t j_end_ = 0;
  };

  /// Pack `top_sets` (each sorted ascending by video id, duplicates
  /// forbidden). O(total ids + max id) — the max-id term is the direct
  /// id→rank remap table, bounded by the video-catalog size.
  explicit TopsetBitmap(std::span<const std::vector<VideoId>> top_sets);

  [[nodiscard]] std::size_t num_sets() const noexcept { return n_; }
  /// Distinct ids across all sets.
  [[nodiscard]] std::size_t universe_size() const noexcept {
    return universe_;
  }
  /// 64-bit blocks per packed set row.
  [[nodiscard]] std::size_t words_per_set() const noexcept { return words_; }

  /// Jaccard(V_i, V_j); exactly the value jaccard_similarity returns on the
  /// original sorted sets (0.0 when both sets are empty).
  [[nodiscard]] double jaccard(std::size_t i, std::size_t j) const;

  /// Batch evaluation: out[t] = Jaccard(V_i, V_{j_begin+t}) for the tile
  /// [j_begin, j_end); out.size() must equal j_end - j_begin. Every value
  /// is bit-identical to jaccard(i, j) — and therefore to
  /// jaccard_similarity — for any SimdMode (the kernels compute identical
  /// exact integer counts; see DESIGN.md §3.14). kAvx2 throws when the
  /// AVX2 path is unavailable. Thread-safe: concurrent calls on a shared
  /// const bitmap only read the packed state.
  void jaccard_row(std::size_t i, std::size_t j_begin, std::size_t j_end,
                   std::span<double> out,
                   SimdMode simd = SimdMode::kAuto) const;

  /// Transpose rows [j_begin, j_end) into `tile` for the overload below.
  void pack_tile(std::size_t j_begin, std::size_t j_end, RowTile& tile) const;

  /// Batch evaluation against a pre-transposed tile: out[t] =
  /// Jaccard(V_i, V_{j_begin+t}) for t in [0, tile.j_end() - j_begin);
  /// j_begin may sit inside the tile (the sweep's diagonal anchors start at
  /// i + 1). Bit-identical to the row-major overload for every SimdMode —
  /// the transposed kernel accumulates the same exact integer counts, and
  /// the scalar mode simply delegates to the row-major path (a transposed
  /// scalar walk would stride the cache for no gain).
  void jaccard_row(std::size_t i, const RowTile& tile, std::size_t j_begin,
                   std::span<double> out,
                   SimdMode simd = SimdMode::kAuto) const;

  /// Raw packed rows (n_ x words_per_set 64-bit blocks) — layout oracle
  /// for tests and fodder for out-of-band kernels.
  [[nodiscard]] std::span<const std::uint64_t> packed_bits() const noexcept {
    return bits_;
  }

 private:
  std::size_t n_ = 0;
  std::size_t universe_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> bits_;          // n_ rows x words_ blocks
  std::vector<std::uint32_t> cardinality_;   // |V_i|
  std::vector<std::uint32_t> nonzero_;       // concatenated nonzero-word lists
  std::vector<std::uint32_t> nonzero_begin_; // n_+1 offsets into nonzero_
};

}  // namespace ccdn
