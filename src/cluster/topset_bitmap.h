// Word-parallel content-similarity kernel for the Gc pipeline.
//
// The Jd matrix (paper Eq. 13) needs Jaccard(V_i, V_j) over every hotspot
// pair — H² evaluations per slot. The scalar path walks two sorted id
// vectors element by element (and re-validates sortedness per pair).
// TopsetBitmap instead packs every top-set into 64-bit blocks over a
// compact universe so one AND+popcount processes 64 candidate ids at once:
//
//  1. *Universe remap.* Only ids that appear in some top-set matter. They
//     are remapped to a dense range [0, U), ordered by descending
//     occurrence count across sets (ties by ascending id). Zipf-skewed
//     workloads share a popular head, so frequency ordering packs the ids
//     most likely to be in any given set into the lowest words, which
//     keeps each set's nonzero-word list short.
//  2. *Block layout.* Set i owns the row bits_[i*words .. (i+1)*words);
//     bit d of the row is id rank d. Rows are contiguous, so a pairwise
//     sweep over j streams row j linearly through the cache.
//  3. *Sparse-gather intersection.* |V_i ∩ V_j| = Σ popcount(a[w] & b[w]),
//     iterating only the nonzero words of the *smaller* set — O(min
//     nonzero words) per pair instead of O(|V_i|+|V_j|) element steps.
//     The union comes from the precomputed cardinalities, and sortedness
//     of the input sets is validated once per set at pack time, not once
//     per pair.
//
// The computed similarity is bit-identical to jaccard_similarity: both
// divide the same exact integer intersection/union counts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/types.h"

namespace ccdn {

class TopsetBitmap {
 public:
  /// Pack `top_sets` (each sorted ascending by video id, duplicates
  /// forbidden). O(total ids · log universe).
  explicit TopsetBitmap(std::span<const std::vector<VideoId>> top_sets);

  [[nodiscard]] std::size_t num_sets() const noexcept { return n_; }
  /// Distinct ids across all sets.
  [[nodiscard]] std::size_t universe_size() const noexcept {
    return universe_;
  }
  /// 64-bit blocks per packed set row.
  [[nodiscard]] std::size_t words_per_set() const noexcept { return words_; }

  /// Jaccard(V_i, V_j); exactly the value jaccard_similarity returns on the
  /// original sorted sets (0.0 when both sets are empty).
  [[nodiscard]] double jaccard(std::size_t i, std::size_t j) const;

 private:
  std::size_t n_ = 0;
  std::size_t universe_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> bits_;          // n_ rows x words_ blocks
  std::vector<std::uint32_t> cardinality_;   // |V_i|
  std::vector<std::uint32_t> nonzero_;       // concatenated nonzero-word lists
  std::vector<std::uint32_t> nonzero_begin_; // n_+1 offsets into nonzero_
};

}  // namespace ccdn
