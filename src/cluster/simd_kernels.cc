// Scalar batch kernels + SimdMode dispatch. This TU is compiled WITHOUT
// -mavx2 (beyond the project-wide -mpopcnt), so everything here is safe to
// execute on any x86-64 — including the dispatch decision itself.
#include "cluster/simd_kernels.h"

#include <bit>
#include <limits>
#include <string>

#include "util/error.h"

namespace ccdn {

bool avx2_kernel_compiled() noexcept {
#ifdef CCDN_SIMD_AVX2_COMPILED
  return true;
#else
  return false;
#endif
}

bool avx2_kernel_available() noexcept {
  return avx2_kernel_compiled() && cpu_has_avx2();
}

bool resolve_simd(SimdMode mode) {
  switch (mode) {
    case SimdMode::kAuto:
      return avx2_kernel_available();
    case SimdMode::kScalar:
      return false;
    case SimdMode::kAvx2:
      CCDN_REQUIRE(avx2_kernel_compiled(),
                   "--simd avx2: this binary was built without the AVX2 "
                   "kernels (CCDN_DISABLE_AVX2 or non-x86 toolchain)");
      CCDN_REQUIRE(cpu_has_avx2(),
                   "--simd avx2: this CPU does not report AVX2");
      return true;
  }
  return false;
}

namespace simd {

void jaccard_tile_counts_scalar(const std::uint64_t* anchor_words,
                                const std::uint32_t* word_idx,
                                std::size_t num_words,
                                const std::uint64_t* rows,
                                std::size_t words_per_row,
                                std::size_t num_rows, std::uint64_t* counts) {
  for (std::size_t t = 0; t < num_rows; ++t) {
    const std::uint64_t* row = rows + t * words_per_row;
    std::uint64_t intersection = 0;
    for (std::size_t k = 0; k < num_words; ++k) {
      intersection += static_cast<std::uint64_t>(
          std::popcount(anchor_words[k] & row[word_idx[k]]));
    }
    counts[t] = intersection;
  }
}

void counts_to_similarity_scalar(const std::uint64_t* counts,
                                 const std::uint32_t* cards,
                                 std::uint32_t anchor_card,
                                 std::size_t num_rows, double* out) {
  for (std::size_t t = 0; t < num_rows; ++t) {
    const std::uint64_t union_size = anchor_card + cards[t] - counts[t];
    out[t] = union_size == 0
                 ? 0.0  // two empty sets, as in the sorted-merge path
                 : static_cast<double>(counts[t]) /
                       static_cast<double>(union_size);
  }
}

double masked_min_scalar(const double* values, const std::uint8_t* mask,
                         std::size_t count) noexcept {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < count; ++k) {
    if (mask[k] != 0 && values[k] < best) best = values[k];
  }
  return best;
}

}  // namespace simd
}  // namespace ccdn
