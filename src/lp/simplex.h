// Two-phase dense primal simplex.
//
// Deliberately a straightforward tableau implementation: the LP-based
// baseline exists to reproduce the paper's running-time comparison (Fig. 8),
// where generic LP solving is orders of magnitude slower than RBCAer.
// Dantzig pricing with an automatic switch to Bland's rule after a stretch
// of degenerate pivots guarantees termination.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/problem.h"

namespace ccdn {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> values;   // per original variable
  std::size_t iterations = 0;   // total pivots (both phases)
};

struct SimplexOptions {
  std::size_t max_iterations = 200000;
  double epsilon = 1e-9;
  /// Consecutive degenerate pivots before switching to Bland's rule.
  std::size_t degenerate_switch = 64;
};

class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solve min c·x, Ax ⋈ b, x >= 0.
  [[nodiscard]] LpSolution solve(const LpProblem& problem) const;

 private:
  SimplexOptions options_;
};

}  // namespace ccdn
