#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace ccdn {

namespace {

/// Dense tableau in canonical form:
///   rows 0..m-1: constraint rows (equalities with slacks/artificials)
///   row m:       objective row (reduced costs; entry [m][n] is -objective)
/// Column n is the RHS.
class Tableau {
 public:
  Tableau(const LpProblem& problem, const SimplexOptions& options)
      : options_(options) {
    const std::size_t m = problem.num_constraints();
    num_structural_ = problem.num_variables();

    // Count slacks (one per inequality) and artificials (one per row that
    // needs an initial basis column: equalities and rows whose slack has a
    // negative coefficient after normalizing b >= 0).
    std::vector<double> rhs(m);
    std::vector<int> sign(m, 1);  // row multiplier to make rhs >= 0
    for (std::size_t r = 0; r < m; ++r) {
      rhs[r] = problem.constraint(r).rhs;
      if (rhs[r] < 0) sign[r] = -1;
    }

    std::size_t num_slacks = 0;
    for (std::size_t r = 0; r < m; ++r) {
      if (problem.constraint(r).relation != Relation::kEq) ++num_slacks;
    }
    // Conservatively allocate an artificial per row; unused ones are never
    // brought into the basis and cost nothing beyond a column of zeros.
    const std::size_t n = num_structural_ + num_slacks + m;
    cols_ = n + 1;
    rows_ = m + 1;
    data_.assign(rows_ * cols_, 0.0);
    basis_.assign(m, 0);
    artificial_start_ = num_structural_ + num_slacks;

    std::size_t slack_cursor = num_structural_;
    for (std::size_t r = 0; r < m; ++r) {
      const LpConstraint& constraint = problem.constraint(r);
      const double row_sign = static_cast<double>(sign[r]);
      for (const auto& term : constraint.terms) {
        at(r, term.variable) += row_sign * term.coefficient;
      }
      at(r, n) = row_sign * constraint.rhs;

      double slack_coeff = 0.0;
      std::size_t slack_col = 0;
      if (constraint.relation != Relation::kEq) {
        slack_coeff =
            (constraint.relation == Relation::kLessEq ? 1.0 : -1.0) * row_sign;
        slack_col = slack_cursor++;
        at(r, slack_col) = slack_coeff;
      }

      if (constraint.relation != Relation::kEq && slack_coeff > 0.0) {
        basis_[r] = slack_col;  // slack starts basic
      } else {
        const std::size_t art_col = artificial_start_ + r;
        at(r, art_col) = 1.0;
        basis_[r] = art_col;
        artificial_used_.push_back(art_col);
      }
    }
  }

  /// Phase 1: minimize the sum of artificials. Returns false if infeasible.
  bool phase1(std::size_t& iterations) {
    if (artificial_used_.empty()) return true;
    // Objective row: sum of artificial columns = sum over their rows.
    const std::size_t m = rows_ - 1;
    std::fill(&at(m, 0), &at(m, 0) + cols_, 0.0);
    for (const std::size_t col : artificial_used_) at(m, col) = 1.0;
    // Price out the basic artificials.
    for (std::size_t r = 0; r < m; ++r) {
      if (at(m, basis_[r]) != 0.0) subtract_row(m, r, at(m, basis_[r]));
    }
    if (!iterate(iterations)) return false;  // unbounded phase 1: impossible
    const double artificial_sum = -at(m, cols_ - 1);
    if (artificial_sum > options_.epsilon * 100) return false;
    drive_out_artificials();
    return true;
  }

  /// Phase 2: minimize the original objective. Returns false if unbounded.
  bool phase2(const LpProblem& problem, std::size_t& iterations) {
    const std::size_t m = rows_ - 1;
    std::fill(&at(m, 0), &at(m, 0) + cols_, 0.0);
    for (std::uint32_t v = 0; v < num_structural_; ++v) {
      at(m, v) = problem.objective_coefficient(v);
    }
    // Forbid artificials from re-entering.
    blocked_.assign(cols_ - 1, false);
    for (const std::size_t col : artificial_used_) blocked_[col] = true;
    for (std::size_t r = 0; r < m; ++r) {
      if (at(m, basis_[r]) != 0.0) subtract_row(m, r, at(m, basis_[r]));
    }
    return iterate(iterations);
  }

  [[nodiscard]] std::vector<double> extract(std::size_t num_vars) const {
    std::vector<double> x(num_vars, 0.0);
    const std::size_t m = rows_ - 1;
    for (std::size_t r = 0; r < m; ++r) {
      if (basis_[r] < num_vars) x[basis_[r]] = at(r, cols_ - 1);
    }
    return x;
  }

  [[nodiscard]] double objective_row_value() const {
    return -at(rows_ - 1, cols_ - 1);
  }

  [[nodiscard]] bool hit_iteration_limit() const noexcept {
    return hit_limit_;
  }

 private:
  double& at(std::size_t row, std::size_t col) {
    return data_[row * cols_ + col];
  }
  [[nodiscard]] const double& at(std::size_t row, std::size_t col) const {
    return data_[row * cols_ + col];
  }

  void subtract_row(std::size_t target, std::size_t source, double factor) {
    if (factor == 0.0) return;
    double* t = &at(target, 0);
    const double* s = &at(source, 0);
    for (std::size_t c = 0; c < cols_; ++c) t[c] -= factor * s[c];
  }

  void pivot(std::size_t pivot_row, std::size_t pivot_col) {
    const double pivot_value = at(pivot_row, pivot_col);
    CCDN_ENSURE(std::abs(pivot_value) > 1e-12, "numerically zero pivot");
    double* pr = &at(pivot_row, 0);
    const double inverse = 1.0 / pivot_value;
    for (std::size_t c = 0; c < cols_; ++c) pr[c] *= inverse;
    pr[pivot_col] = 1.0;  // exactly
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pivot_row) continue;
      const double factor = at(r, pivot_col);
      if (factor == 0.0) continue;
      subtract_row(r, pivot_row, factor);
      at(r, pivot_col) = 0.0;  // exactly
    }
    basis_[pivot_row] = pivot_col;
  }

  /// Run simplex iterations on the current objective row.
  /// Returns false on unbounded.
  bool iterate(std::size_t& iterations) {
    const std::size_t m = rows_ - 1;
    std::size_t degenerate_streak = 0;
    while (true) {
      if (iterations >= options_.max_iterations) {
        hit_limit_ = true;
        return true;
      }
      const bool use_bland = degenerate_streak >= options_.degenerate_switch;

      // Entering column: most negative reduced cost (Dantzig) or first
      // negative (Bland).
      std::size_t entering = cols_ - 1;
      double best = -options_.epsilon;
      for (std::size_t c = 0; c + 1 < cols_; ++c) {
        if (!blocked_.empty() && blocked_[c]) continue;
        const double reduced = at(m, c);
        if (reduced < best) {
          entering = c;
          if (use_bland) break;
          best = reduced;
        }
      }
      if (entering == cols_ - 1) return true;  // optimal

      // Leaving row: ratio test (Bland tie-break on basis index).
      std::size_t leaving = m;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < m; ++r) {
        const double coeff = at(r, entering);
        if (coeff <= options_.epsilon) continue;
        const double ratio = at(r, cols_ - 1) / coeff;
        if (ratio < best_ratio - options_.epsilon ||
            (ratio < best_ratio + options_.epsilon && leaving != m &&
             basis_[r] < basis_[leaving])) {
          best_ratio = ratio;
          leaving = r;
        }
      }
      if (leaving == m) return false;  // unbounded

      degenerate_streak =
          best_ratio <= options_.epsilon ? degenerate_streak + 1 : 0;
      pivot(leaving, entering);
      ++iterations;
    }
  }

  /// After phase 1, pivot remaining basic artificials out of the basis (or
  /// detect their rows as redundant).
  void drive_out_artificials() {
    const std::size_t m = rows_ - 1;
    for (std::size_t r = 0; r < m; ++r) {
      if (basis_[r] < artificial_start_) continue;
      // Find any non-artificial column with a nonzero entry in this row.
      std::size_t replacement = cols_ - 1;
      for (std::size_t c = 0; c < artificial_start_; ++c) {
        if (std::abs(at(r, c)) > options_.epsilon) {
          replacement = c;
          break;
        }
      }
      if (replacement != cols_ - 1) {
        pivot(r, replacement);
      }
      // Else: redundant row; the artificial stays basic at value ~0, which
      // is harmless because phase 2 blocks artificial columns from pricing.
    }
  }

  SimplexOptions options_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t num_structural_ = 0;
  std::size_t artificial_start_ = 0;
  std::vector<double> data_;
  std::vector<std::size_t> basis_;
  std::vector<std::size_t> artificial_used_;
  std::vector<bool> blocked_;
  bool hit_limit_ = false;
};

}  // namespace

LpSolution SimplexSolver::solve(const LpProblem& problem) const {
  LpSolution solution;
  if (problem.num_variables() == 0) {
    solution.status = LpStatus::kOptimal;
    return solution;
  }
  Tableau tableau(problem, options_);
  if (!tableau.phase1(solution.iterations)) {
    solution.status = LpStatus::kInfeasible;
    return solution;
  }
  const bool bounded = tableau.phase2(problem, solution.iterations);
  solution.values = tableau.extract(problem.num_variables());
  solution.objective = problem.objective_value(solution.values);
  if (!bounded) {
    solution.status = LpStatus::kUnbounded;
  } else if (tableau.hit_iteration_limit()) {
    solution.status = LpStatus::kIterationLimit;
  } else {
    solution.status = LpStatus::kOptimal;
  }
  return solution;
}

}  // namespace ccdn
