// Sparse linear-program description.
//
// Minimize c·x subject to sparse linear constraints and x >= 0.
// This backs the LP-based baseline of the paper's Fig. 8: the ILP (U) is
// relaxed, solved with the simplex method, and rounded (the paper did the
// same with GLPK on a sampled instance).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ccdn {

enum class Relation { kLessEq, kEq, kGreaterEq };

struct LpTerm {
  std::uint32_t variable = 0;
  double coefficient = 0.0;
};

struct LpConstraint {
  std::vector<LpTerm> terms;
  Relation relation = Relation::kLessEq;
  double rhs = 0.0;
};

class LpProblem {
 public:
  /// Add a variable (implicitly >= 0) with the given objective coefficient;
  /// returns its index.
  std::uint32_t add_variable(double objective_coefficient,
                             std::string name = {});

  /// Add a constraint; terms referencing unknown variables are rejected.
  /// Duplicate variables within one constraint are summed.
  void add_constraint(LpConstraint constraint);

  [[nodiscard]] std::size_t num_variables() const noexcept {
    return objective_.size();
  }
  [[nodiscard]] std::size_t num_constraints() const noexcept {
    return constraints_.size();
  }
  [[nodiscard]] double objective_coefficient(std::uint32_t variable) const;
  [[nodiscard]] const std::string& variable_name(std::uint32_t variable) const;
  [[nodiscard]] const LpConstraint& constraint(std::size_t row) const;

  /// Objective value of an assignment (no feasibility check).
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

  /// Max constraint violation of an assignment (0 when feasible).
  [[nodiscard]] double max_violation(const std::vector<double>& x) const;

 private:
  std::vector<double> objective_;
  std::vector<std::string> names_;
  std::vector<LpConstraint> constraints_;
};

}  // namespace ccdn
