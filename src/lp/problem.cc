#include "lp/problem.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace ccdn {

std::uint32_t LpProblem::add_variable(double objective_coefficient,
                                      std::string name) {
  objective_.push_back(objective_coefficient);
  if (name.empty()) name = "x" + std::to_string(objective_.size() - 1);
  names_.push_back(std::move(name));
  return static_cast<std::uint32_t>(objective_.size() - 1);
}

void LpProblem::add_constraint(LpConstraint constraint) {
  auto& terms = constraint.terms;
  for (const auto& term : terms) {
    CCDN_REQUIRE(term.variable < objective_.size(),
                 "constraint references unknown variable");
  }
  std::sort(terms.begin(), terms.end(),
            [](const LpTerm& a, const LpTerm& b) {
              return a.variable < b.variable;
            });
  std::size_t write = 0;
  for (std::size_t read = 0; read < terms.size(); ++read) {
    if (write > 0 && terms[write - 1].variable == terms[read].variable) {
      terms[write - 1].coefficient += terms[read].coefficient;
    } else {
      terms[write++] = terms[read];
    }
  }
  terms.resize(write);
  constraints_.push_back(std::move(constraint));
}

double LpProblem::objective_coefficient(std::uint32_t variable) const {
  CCDN_REQUIRE(variable < objective_.size(), "variable out of range");
  return objective_[variable];
}

const std::string& LpProblem::variable_name(std::uint32_t variable) const {
  CCDN_REQUIRE(variable < names_.size(), "variable out of range");
  return names_[variable];
}

const LpConstraint& LpProblem::constraint(std::size_t row) const {
  CCDN_REQUIRE(row < constraints_.size(), "constraint out of range");
  return constraints_[row];
}

double LpProblem::objective_value(const std::vector<double>& x) const {
  CCDN_REQUIRE(x.size() == objective_.size(), "assignment length mismatch");
  double value = 0.0;
  for (std::size_t v = 0; v < x.size(); ++v) value += objective_[v] * x[v];
  return value;
}

double LpProblem::max_violation(const std::vector<double>& x) const {
  CCDN_REQUIRE(x.size() == objective_.size(), "assignment length mismatch");
  double worst = 0.0;
  for (const auto& constraint : constraints_) {
    double lhs = 0.0;
    for (const auto& term : constraint.terms) {
      lhs += term.coefficient * x[term.variable];
    }
    double violation = 0.0;
    switch (constraint.relation) {
      case Relation::kLessEq: violation = lhs - constraint.rhs; break;
      case Relation::kGreaterEq: violation = constraint.rhs - lhs; break;
      case Relation::kEq: violation = std::abs(lhs - constraint.rhs); break;
    }
    worst = std::max(worst, violation);
  }
  for (const double value : x) worst = std::max(worst, -value);
  return worst;
}

}  // namespace ccdn
