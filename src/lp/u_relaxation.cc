#include "lp/u_relaxation.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace ccdn {

UVariableMap::UVariableMap(std::size_t num_requests, std::size_t num_hotspots,
                           std::vector<VideoId> distinct_videos)
    : requests_(num_requests),
      hotspots_(num_hotspots),
      videos_(std::move(distinct_videos)) {
  CCDN_REQUIRE(std::is_sorted(videos_.begin(), videos_.end()),
               "video list must be sorted");
}

std::uint32_t UVariableMap::x(std::size_t request, std::size_t hotspot) const {
  CCDN_REQUIRE(request < requests_ && hotspot < hotspots_,
               "x index out of range");
  // Layout: per request, hotspot columns then the CDN column.
  return static_cast<std::uint32_t>(request * (hotspots_ + 1) + hotspot);
}

std::uint32_t UVariableMap::x_cdn(std::size_t request) const {
  CCDN_REQUIRE(request < requests_, "request out of range");
  return static_cast<std::uint32_t>(request * (hotspots_ + 1) + hotspots_);
}

std::size_t UVariableMap::video_slot(VideoId video) const {
  const auto it = std::lower_bound(videos_.begin(), videos_.end(), video);
  CCDN_REQUIRE(it != videos_.end() && *it == video, "unknown video");
  return static_cast<std::size_t>(it - videos_.begin());
}

std::uint32_t UVariableMap::y(VideoId video, std::size_t hotspot) const {
  CCDN_REQUIRE(hotspot < hotspots_, "hotspot out of range");
  const std::size_t base = requests_ * (hotspots_ + 1);
  return static_cast<std::uint32_t>(base + video_slot(video) * hotspots_ +
                                    hotspot);
}

std::size_t UVariableMap::total_variables() const noexcept {
  return requests_ * (hotspots_ + 1) + videos_.size() * hotspots_;
}

ULp build_u_relaxation(const UInstance& instance) {
  CCDN_REQUIRE(instance.request_locations.size() ==
                   instance.request_videos.size(),
               "request vectors length mismatch");
  CCDN_REQUIRE(!instance.hotspots.empty(), "no hotspots");
  const std::size_t n = instance.request_locations.size();
  const std::size_t m = instance.hotspots.size();

  std::vector<VideoId> videos = instance.request_videos;
  std::sort(videos.begin(), videos.end());
  videos.erase(std::unique(videos.begin(), videos.end()), videos.end());

  ULp lp{LpProblem{}, UVariableMap(n, m, videos)};

  // Variables, in the exact order UVariableMap expects.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const double d = distance_km(instance.request_locations[i],
                                   instance.hotspots[j].location);
      (void)lp.problem.add_variable(instance.alpha * d,
                                    "x_" + std::to_string(i) + "_" +
                                        std::to_string(j));
    }
    (void)lp.problem.add_variable(instance.alpha * instance.cdn_distance_km,
                                  "x_" + std::to_string(i) + "_S");
  }
  for (const VideoId v : videos) {
    for (std::size_t j = 0; j < m; ++j) {
      (void)lp.problem.add_variable(
          instance.beta, "y_" + std::to_string(v) + "_" + std::to_string(j));
    }
  }

  // Eq. 4: each request fully served.
  for (std::size_t i = 0; i < n; ++i) {
    LpConstraint c;
    for (std::size_t j = 0; j < m; ++j) c.terms.push_back({lp.vars.x(i, j), 1.0});
    c.terms.push_back({lp.vars.x_cdn(i), 1.0});
    c.relation = Relation::kEq;
    c.rhs = 1.0;
    lp.problem.add_constraint(std::move(c));
  }
  // Eq. 5: x_ij <= y_{W(i)j}.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      LpConstraint c;
      c.terms.push_back({lp.vars.x(i, j), 1.0});
      c.terms.push_back({lp.vars.y(instance.request_videos[i], j), -1.0});
      c.relation = Relation::kLessEq;
      c.rhs = 0.0;
      lp.problem.add_constraint(std::move(c));
    }
  }
  // Eq. 6: service capacity.
  for (std::size_t j = 0; j < m; ++j) {
    LpConstraint c;
    for (std::size_t i = 0; i < n; ++i) c.terms.push_back({lp.vars.x(i, j), 1.0});
    c.relation = Relation::kLessEq;
    c.rhs = static_cast<double>(instance.hotspots[j].service_capacity);
    lp.problem.add_constraint(std::move(c));
  }
  // Eq. 7: cache capacity.
  for (std::size_t j = 0; j < m; ++j) {
    LpConstraint c;
    for (const VideoId v : videos) c.terms.push_back({lp.vars.y(v, j), 1.0});
    c.relation = Relation::kLessEq;
    c.rhs = static_cast<double>(instance.hotspots[j].cache_capacity);
    lp.problem.add_constraint(std::move(c));
  }
  return lp;
}

USchedule round_u_solution(const UInstance& instance, const UVariableMap& vars,
                           const std::vector<double>& values) {
  CCDN_REQUIRE(values.size() == vars.total_variables(),
               "solution length mismatch");
  const std::size_t n = vars.num_requests();
  const std::size_t m = vars.num_hotspots();

  USchedule schedule;
  schedule.assignment.assign(n, kCdnServer);
  schedule.placements.assign(m, {});

  std::vector<std::uint32_t> service_left(m);
  std::vector<std::uint32_t> cache_left(m);
  for (std::size_t j = 0; j < m; ++j) {
    service_left[j] = instance.hotspots[j].service_capacity;
    cache_left[j] = instance.hotspots[j].cache_capacity;
  }
  // Track committed placements as sorted vectors for binary search.
  std::vector<std::vector<VideoId>>& placed = schedule.placements;
  const auto is_placed = [&](std::size_t j, VideoId v) {
    return std::binary_search(placed[j].begin(), placed[j].end(), v);
  };
  const auto place = [&](std::size_t j, VideoId v) {
    const auto it = std::lower_bound(placed[j].begin(), placed[j].end(), v);
    placed[j].insert(it, v);
    --cache_left[j];
    ++schedule.total_replicas;
  };

  // Round requests in descending order of their strongest fractional
  // hotspot preference, so confident assignments claim capacity first.
  struct Candidate {
    std::size_t request = 0;
    double confidence = 0.0;
  };
  std::vector<Candidate> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    double best = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      best = std::max(best, values[vars.x(i, j)]);
    }
    order[i] = {i, best};
  }
  std::sort(order.begin(), order.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.confidence != b.confidence)
                return a.confidence > b.confidence;
              return a.request < b.request;
            });

  for (const Candidate& candidate : order) {
    const std::size_t i = candidate.request;
    const VideoId video = instance.request_videos[i];
    // Rank hotspots for this request by fractional mass, then by distance.
    std::vector<std::size_t> ranked(m);
    std::iota(ranked.begin(), ranked.end(), std::size_t{0});
    std::sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
      const double xa = values[vars.x(i, a)];
      const double xb = values[vars.x(i, b)];
      if (xa != xb) return xa > xb;
      const double da = distance_km(instance.request_locations[i],
                                    instance.hotspots[a].location);
      const double db = distance_km(instance.request_locations[i],
                                    instance.hotspots[b].location);
      return da < db;
    });
    for (const std::size_t j : ranked) {
      if (values[vars.x(i, j)] <= 0.0 || service_left[j] == 0) continue;
      if (!is_placed(j, video)) {
        if (cache_left[j] == 0) continue;
        place(j, video);
      }
      --service_left[j];
      schedule.assignment[i] = static_cast<HotspotIndex>(j);
      schedule.total_distance_km += distance_km(
          instance.request_locations[i], instance.hotspots[j].location);
      break;
    }
    if (schedule.assignment[i] == kCdnServer) {
      schedule.total_distance_km += instance.cdn_distance_km;
    }
  }

  schedule.objective = instance.alpha * schedule.total_distance_km +
                       instance.beta * static_cast<double>(schedule.total_replicas);
  return schedule;
}

USchedule solve_u_instance(const UInstance& instance,
                           const SimplexOptions& options) {
  const ULp lp = build_u_relaxation(instance);
  const LpSolution solution = SimplexSolver(options).solve(lp.problem);
  if (solution.status != LpStatus::kOptimal &&
      solution.status != LpStatus::kIterationLimit) {
    throw SolverError("LP relaxation of (U) did not solve");
  }
  return round_u_solution(instance, lp.vars, solution.values);
}

}  // namespace ccdn
