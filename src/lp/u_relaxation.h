// LP relaxation of the joint request-redirection / content-replication
// problem (U) from paper §III-B:
//
//   min  α·ΣΣ x_ij·d_ij + β·ΣΣ y_vj
//   s.t. Σ_j x_ij + x_iS = 1            (every request served)       Eq. 4
//        x_ij ≤ y_{W(i)j}               (placement precedes serving) Eq. 5
//        Σ_i x_ij ≤ s_j                 (service capacity)           Eq. 6
//        Σ_v y_vj ≤ c_j                 (cache capacity)             Eq. 7
//        x, y ∈ [0,1]  (relaxed from {0,1})
//
// The individual upper bounds are implied: x by Eq. 4 and non-negativity;
// y because lowering any y_vj > max_i x_ij strictly improves the objective.
// The rounding pass converts a fractional solution into a feasible integral
// schedule, as in the paper's LP-based baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/geo_point.h"
#include "lp/problem.h"
#include "lp/simplex.h"
#include "model/types.h"

namespace ccdn {

/// A (typically sampled) instance of problem (U).
struct UInstance {
  std::vector<GeoPoint> request_locations;
  std::vector<VideoId> request_videos;  // W(i), parallel to locations
  std::vector<Hotspot> hotspots;
  double alpha = 1.0;
  double beta = 1.0;
  double cdn_distance_km = kCdnDistanceKm;
};

/// Variable index bookkeeping for an assembled LP.
class UVariableMap {
 public:
  UVariableMap(std::size_t num_requests, std::size_t num_hotspots,
               std::vector<VideoId> distinct_videos);

  [[nodiscard]] std::size_t num_requests() const noexcept { return requests_; }
  [[nodiscard]] std::size_t num_hotspots() const noexcept { return hotspots_; }
  [[nodiscard]] std::size_t num_videos() const noexcept {
    return videos_.size();
  }

  /// x_ij, j < num_hotspots; x_iS via x_cdn().
  [[nodiscard]] std::uint32_t x(std::size_t request, std::size_t hotspot) const;
  [[nodiscard]] std::uint32_t x_cdn(std::size_t request) const;
  /// y_vj with v given as the original VideoId.
  [[nodiscard]] std::uint32_t y(VideoId video, std::size_t hotspot) const;
  [[nodiscard]] std::size_t video_slot(VideoId video) const;
  [[nodiscard]] std::size_t total_variables() const noexcept;

 private:
  std::size_t requests_;
  std::size_t hotspots_;
  std::vector<VideoId> videos_;  // sorted distinct
};

/// Assemble the LP relaxation. Returns the problem plus the variable map
/// needed to interpret solutions.
struct ULp {
  LpProblem problem;
  UVariableMap vars;
};
[[nodiscard]] ULp build_u_relaxation(const UInstance& instance);

/// A feasible integral schedule for a UInstance.
struct USchedule {
  /// Serving hotspot per request, or kCdnServer.
  std::vector<HotspotIndex> assignment;
  /// Videos replicated per hotspot.
  std::vector<std::vector<VideoId>> placements;
  double total_distance_km = 0.0;  // Ω1
  std::size_t total_replicas = 0;  // Ω2
  /// α·Ω1 + β·Ω2 under the instance weights.
  double objective = 0.0;
};

/// Greedy rounding of a fractional solution: requests are assigned in
/// descending fractional confidence, respecting service capacity, cache
/// capacity, and the x<=y coupling; leftovers go to the CDN.
[[nodiscard]] USchedule round_u_solution(const UInstance& instance,
                                         const UVariableMap& vars,
                                         const std::vector<double>& values);

/// Convenience: solve + round in one call.
[[nodiscard]] USchedule solve_u_instance(const UInstance& instance,
                                         const SimplexOptions& options = {});

}  // namespace ccdn
